// Cross-validation: the traditional online candidate-network generator and
// the offline-lattice pipeline (Phases 0-2) must produce exactly the same
// candidate networks, for every interpretation of every workload query.
#include "kws/online_cn_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/dblife.h"
#include "datasets/workload.h"
#include "kws/pruned_lattice.h"
#include "lattice/canonical_label.h"
#include "lattice/lattice_generator.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

std::set<std::string> CanonicalSet(const std::vector<JoinTree>& trees) {
  std::set<std::string> out;
  for (const JoinTree& t : trees) out.insert(CanonicalLabel(t));
  return out;
}

std::set<std::string> MtnCanonicalSet(const PrunedLattice& pl) {
  std::set<std::string> out;
  for (NodeId m : pl.mtns()) {
    out.insert(CanonicalLabel(pl.lattice().node(m).tree));
  }
  return out;
}

TEST(OnlineCnGeneratorTest, ToyExample1MatchesLattice) {
  ToyFixture fx;
  KeywordBinding binding({{"saffron", {fx.color, 1}},
                          {"scented", {fx.item, 1}},
                          {"candle", {fx.ptype, 1}}});
  auto online = GenerateCandidateNetworks(fx.schema, binding, 2);
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  EXPECT_EQ(online->candidate_networks.size(), 1u);
  PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
  EXPECT_EQ(CanonicalSet(online->candidate_networks), MtnCanonicalSet(pl));
}

TEST(OnlineCnGeneratorTest, EveryLeafBoundEveryCnTotalMinimal) {
  ToyFixture fx;
  KeywordBinding binding(
      {{"red", {fx.color, 1}}, {"candle", {fx.ptype, 1}}});
  auto online = GenerateCandidateNetworks(fx.schema, binding, 2);
  ASSERT_TRUE(online.ok());
  ASSERT_FALSE(online->candidate_networks.empty());
  for (const JoinTree& cn : online->candidate_networks) {
    ASSERT_TRUE(cn.Validate(fx.schema).ok());
    for (size_t leaf : cn.LeafIndices()) {
      EXPECT_NE(cn.vertex(leaf).copy, 0);
    }
  }
}

TEST(OnlineCnGeneratorTest, EmptyBindingRejected) {
  ToyFixture fx;
  KeywordBinding binding(std::vector<KeywordAssignment>{});
  EXPECT_EQ(GenerateCandidateNetworks(fx.schema, binding, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OnlineCnGeneratorTest, SingleKeywordCnIsBaseNode) {
  ToyFixture fx;
  KeywordBinding binding({{"vanilla", {fx.item, 1}}});
  auto online = GenerateCandidateNetworks(fx.schema, binding, 2);
  ASSERT_TRUE(online.ok());
  ASSERT_EQ(online->candidate_networks.size(), 1u);
  EXPECT_EQ(online->candidate_networks[0].num_vertices(), 1u);
}

TEST(OnlineCnGeneratorTest, MaxJoinsBoundsSize) {
  ToyFixture fx;
  KeywordBinding binding(
      {{"red", {fx.color, 1}}, {"candle", {fx.ptype, 1}}});
  // At max_joins = 1 the two keywords cannot connect (they need Item in
  // between): no CN.
  auto online = GenerateCandidateNetworks(fx.schema, binding, 1);
  ASSERT_TRUE(online.ok());
  EXPECT_TRUE(online->candidate_networks.empty());
}

class OnlineCnAgreementTest : public testing::TestWithParam<size_t> {};

TEST_P(OnlineCnAgreementTest, AgreesWithLatticeOnDblifeWorkload) {
  const size_t max_joins = GetParam();
  DblifeConfig config;
  config.num_persons = 60;
  config.num_publications = 100;
  config.num_conferences = 10;
  config.num_organizations = 12;
  config.num_topics = 10;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = max_joins;
  lconfig.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  KeywordBinder binder(&ds->schema, &index, 3, /*max_interpretations=*/6);
  for (const WorkloadQuery& q : PaperWorkload()) {
    BindingResult binding_result = binder.Bind(q.text);
    for (const KeywordBinding& binding : binding_result.interpretations) {
      auto online =
          GenerateCandidateNetworks(ds->schema, binding, max_joins);
      ASSERT_TRUE(online.ok());
      PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
      EXPECT_EQ(CanonicalSet(online->candidate_networks),
                MtnCanonicalSet(pl))
          << q.id << " @ " << binding.ToString(ds->schema);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MaxJoins, OnlineCnAgreementTest,
                         testing::Values(2, 3, 4));

}  // namespace
}  // namespace kwsdbg
