#include "kws/pruned_lattice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datasets/toy_product_db.h"
#include "lattice/canonical_label.h"
#include "lattice/lattice_generator.h"

namespace kwsdbg {
namespace {

// The paper's Fig. 6 setting: "red candle" with red -> Color[1] and
// candle -> ProductType[1] on the toy schema.
class PrunedLatticeTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    schema_ = std::move(ds->schema);
    LatticeConfig config;
    config.max_joins = 2;
    config.num_keyword_copies = 2;
    auto lattice = LatticeGenerator::Generate(schema_, config);
    ASSERT_TRUE(lattice.ok());
    lattice_ = std::move(*lattice);
    color_ = *schema_.RelationIdByName("Color");
    ptype_ = *schema_.RelationIdByName("ProductType");
    item_ = *schema_.RelationIdByName("Item");
    attr_ = *schema_.RelationIdByName("Attribute");
  }

  KeywordBinding RedCandle() {
    return KeywordBinding(
        {{"red", {color_, 1}}, {"candle", {ptype_, 1}}});
  }

  std::unique_ptr<Database> db_;
  SchemaGraph schema_;
  std::unique_ptr<Lattice> lattice_;
  RelationId color_ = 0, ptype_ = 0, item_ = 0, attr_ = 0;
};

TEST_F(PrunedLatticeTest, SurvivorsHaveOnlyBoundOrFreeCopies) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  EXPECT_GT(pl.surviving().size(), 0u);
  EXPECT_LT(pl.surviving().size(), lattice_->num_nodes());
  KeywordBinding binding = RedCandle();
  for (NodeId id : pl.surviving()) {
    for (const RelationCopy& v : lattice_->node(id).tree.vertices()) {
      EXPECT_TRUE(v.copy == 0 || binding.IsBound(v))
          << lattice_->node(id).tree.ToString(schema_);
    }
  }
}

TEST_F(PrunedLatticeTest, Fig6SurvivorCount) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  // Allowed vertices: {I0, P0, C0, A0, P1, C1}; trees are Item-centered.
  // Level 1: 6; level 2 (I0 + one neighbor): 5; level 3 (I0 + two allowed
  // neighbors on distinct FK edges): C(5,2) = 10 minus the same-edge pairs
  // {P0,P1} and {C0,C1} (Item's FK column can join only one instance) = 8.
  EXPECT_EQ(pl.surviving().size(), 19u);
}

TEST_F(PrunedLatticeTest, SingleMtnIsP1I0C1) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  ASSERT_EQ(pl.mtns().size(), 1u);
  const JoinTree& t = lattice_->node(pl.mtns()[0]).tree;
  EXPECT_EQ(t.num_vertices(), 3u);
  EXPECT_TRUE(t.ContainsVertex({ptype_, 1}));
  EXPECT_TRUE(t.ContainsVertex({item_, 0}));
  EXPECT_TRUE(t.ContainsVertex({color_, 1}));
}

TEST_F(PrunedLatticeTest, TotalityChecks) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  NodeId mtn = pl.mtns()[0];
  EXPECT_TRUE(pl.IsTotal(mtn));
  for (NodeId c : lattice_->node(mtn).children) {
    EXPECT_FALSE(pl.IsTotal(c));
  }
}

TEST_F(PrunedLatticeTest, RetainedIsMtnPlusDescendants) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  NodeId mtn = pl.mtns()[0];
  // Desc(P1-I0-C1) = {P1-I0, I0-C1, P1, I0, C1}.
  EXPECT_EQ(pl.RetainedDescendants(mtn).size(), 5u);
  EXPECT_EQ(pl.retained().size(), 6u);
  EXPECT_TRUE(pl.IsRetained(mtn));
  EXPECT_TRUE(pl.IsMtn(mtn));
  for (NodeId d : pl.RetainedDescendants(mtn)) {
    EXPECT_TRUE(pl.IsRetained(d));
    EXPECT_FALSE(pl.IsMtn(d));
  }
}

TEST_F(PrunedLatticeTest, RetainedChildrenParentsRestricted) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  NodeId mtn = pl.mtns()[0];
  EXPECT_EQ(pl.RetainedChildren(mtn).size(), 2u);  // P1-I0 and I0-C1
  // I0 sits under both level-2 nodes.
  NodeId i0 = lattice_->FindTree(JoinTree::Single({item_, 0}));
  ASSERT_NE(i0, kInvalidNode);
  EXPECT_EQ(pl.RetainedParents(i0).size(), 2u);
  EXPECT_EQ(pl.RetainedAncestors(i0).size(), 3u);  // both level-2 + MTN
}

TEST_F(PrunedLatticeTest, RetainedAtLevelAndMaxLevel) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  EXPECT_EQ(pl.MaxRetainedLevel(), 3u);
  EXPECT_EQ(pl.RetainedAtLevel(1).size(), 3u);  // P1, I0, C1
  EXPECT_EQ(pl.RetainedAtLevel(2).size(), 2u);
  EXPECT_EQ(pl.RetainedAtLevel(3).size(), 1u);
  EXPECT_TRUE(pl.RetainedAtLevel(9).empty());
}

TEST_F(PrunedLatticeTest, StatsAreConsistent) {
  PrunedLattice pl = PrunedLattice::Build(*lattice_, RedCandle());
  const PruneStats& s = pl.stats();
  EXPECT_EQ(s.lattice_nodes, lattice_->num_nodes());
  EXPECT_EQ(s.surviving_nodes, pl.surviving().size());
  EXPECT_EQ(s.num_mtns, 1u);
  EXPECT_EQ(s.retained_nodes, 6u);
  EXPECT_EQ(s.mtn_desc_total, 5u);
  EXPECT_EQ(s.mtn_desc_unique, 5u);
}

TEST_F(PrunedLatticeTest, ThreeKeywordInterpretationQ1) {
  // Example 1, q1 interpretation: saffron->Color, scented->Item,
  // candle->ProductType. The only MTN is P1 - I1 - C1.
  KeywordBinding binding({{"saffron", {color_, 1}},
                          {"scented", {item_, 1}},
                          {"candle", {ptype_, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*lattice_, binding);
  ASSERT_EQ(pl.mtns().size(), 1u);
  const JoinTree& t = lattice_->node(pl.mtns()[0]).tree;
  EXPECT_TRUE(t.ContainsVertex({color_, 1}));
  EXPECT_TRUE(t.ContainsVertex({item_, 1}));
  EXPECT_TRUE(t.ContainsVertex({ptype_, 1}));
}

TEST_F(PrunedLatticeTest, MtnsAreConsistentAcrossLatticeLevels) {
  // An MTN found in a level-L lattice is also an MTN in any deeper lattice:
  // minimality depends only on the node's children, which are identical.
  // (This is why Table 3's per-level MTN counts are cumulative counts of
  // the same underlying candidate networks.)
  LatticeConfig big_config;
  big_config.max_joins = 3;
  big_config.num_keyword_copies = 2;
  auto big = LatticeGenerator::Generate(schema_, big_config);
  ASSERT_TRUE(big.ok());
  for (const KeywordBinding& binding :
       {RedCandle(),
        KeywordBinding({{"saffron", {color_, 1}},
                        {"scented", {item_, 1}},
                        {"candle", {ptype_, 1}}})}) {
    PrunedLattice small_pl = PrunedLattice::Build(*lattice_, binding);
    PrunedLattice big_pl = PrunedLattice::Build(**big, binding);
    std::set<std::string> small_set, big_set;
    for (NodeId m : small_pl.mtns()) {
      small_set.insert(CanonicalLabel(lattice_->node(m).tree));
    }
    for (NodeId m : big_pl.mtns()) {
      big_set.insert(CanonicalLabel((*big)->node(m).tree));
    }
    for (const std::string& label : small_set) {
      EXPECT_TRUE(big_set.count(label)) << label;
    }
  }
}

TEST_F(PrunedLatticeTest, NoMtnWhenKeywordsCannotConnect) {
  // Two keywords two joins apart cannot meet within max_joins = 0.
  LatticeConfig config;
  config.max_joins = 1;
  config.num_keyword_copies = 2;
  auto small = LatticeGenerator::Generate(schema_, config);
  ASSERT_TRUE(small.ok());
  // red -> Color, candle -> ProductType need Item in between (2 joins).
  PrunedLattice pl = PrunedLattice::Build(**small, RedCandle());
  EXPECT_TRUE(pl.mtns().empty());
  EXPECT_TRUE(pl.retained().empty());
  EXPECT_EQ(pl.MaxRetainedLevel(), 0u);
}

TEST_F(PrunedLatticeTest, MultiKeywordSameRelation) {
  // Both keywords on Item: the two Item copies can only meet through a
  // shared dimension row, giving the three MTNs I1 - X0 - I2 for
  // X in {ProductType, Color, Attribute}.
  KeywordBinding binding({{"red", {item_, 1}}, {"candle", {item_, 2}}});
  PrunedLattice pl = PrunedLattice::Build(*lattice_, binding);
  ASSERT_EQ(pl.mtns().size(), 3u);
  for (NodeId m : pl.mtns()) {
    const JoinTree& t = lattice_->node(m).tree;
    EXPECT_EQ(t.num_vertices(), 3u);
    EXPECT_TRUE(t.ContainsVertex({item_, 1}));
    EXPECT_TRUE(t.ContainsVertex({item_, 2}));
  }
}

}  // namespace
}  // namespace kwsdbg
