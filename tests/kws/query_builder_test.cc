#include "kws/query_builder.h"

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"
#include "lattice/lattice_generator.h"
#include "sql/executor.h"

namespace kwsdbg {
namespace {

class QueryBuilderTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    schema_ = std::move(ds->schema);
    color_ = *schema_.RelationIdByName("Color");
    ptype_ = *schema_.RelationIdByName("ProductType");
    item_ = *schema_.RelationIdByName("Item");
  }

  std::unique_ptr<Database> db_;
  SchemaGraph schema_;
  RelationId color_ = 0, ptype_ = 0, item_ = 0;
};

TEST_F(QueryBuilderTest, SingleFreeVertex) {
  KeywordBinding binding(std::vector<KeywordAssignment>{});
  JoinTree t = JoinTree::Single({item_, 0});
  auto q = BuildNodeQuery(t, schema_, binding);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->vertices.size(), 1u);
  EXPECT_EQ(q->vertices[0].table, "Item");
  EXPECT_EQ(q->vertices[0].alias, "Item_0");
  EXPECT_TRUE(q->vertices[0].keyword.empty());
}

TEST_F(QueryBuilderTest, BoundVertexGetsKeyword) {
  KeywordBinding binding({{"red", {color_, 1}}});
  JoinTree t = JoinTree::Single({color_, 1});
  auto q = BuildNodeQuery(t, schema_, binding);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->vertices[0].keyword, "red");
}

TEST_F(QueryBuilderTest, UnboundKeywordCopyRejected) {
  KeywordBinding binding({{"red", {color_, 1}}});
  JoinTree t = JoinTree::Single({color_, 2});
  EXPECT_EQ(BuildNodeQuery(t, schema_, binding).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(QueryBuilderTest, JoinColumnsOrientedBySchemaEdge) {
  KeywordBinding binding({{"candle", {ptype_, 1}}});
  // Edge 0 is Item.p_type -> ProductType.id; build tree P1 <- I0.
  JoinTree t = JoinTree::Single({ptype_, 1}).Extend(0, {item_, 0}, 0);
  auto q = BuildNodeQuery(t, schema_, binding);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->joins.size(), 1u);
  // Vertex 0 = ProductType, vertex 1 = Item; the join must pair
  // ProductType.id with Item.p_type regardless of orientation.
  const QueryJoin& j = q->joins[0];
  EXPECT_EQ(q->vertices[j.left].table == "ProductType" ? j.left_column
                                                       : j.right_column,
            "id");
  EXPECT_EQ(q->vertices[j.left].table == "Item" ? j.left_column
                                                : j.right_column,
            "p_type");
}

TEST_F(QueryBuilderTest, BuiltQueryExecutes) {
  KeywordBinding binding({{"candle", {ptype_, 1}}, {"scented", {item_, 1}}});
  JoinTree t = JoinTree::Single({ptype_, 1}).Extend(0, {item_, 1}, 0);
  auto q = BuildNodeQuery(t, schema_, binding);
  ASSERT_TRUE(q.ok());
  Executor executor(db_.get());
  auto rs = executor.Execute(*q);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 3u);
}

TEST_F(QueryBuilderTest, SelectivityProbeOrderRanksRareKeywordsFirst) {
  InvertedIndex index = InvertedIndex::Build(*db_);
  JoinNetworkQuery q;
  // "saffron" (few rows) must rank before "scented" (most Item rows);
  // keyword vertices before the free one regardless of table size.
  q.vertices = {{"Item", "I1", "scented"},
                {"Color", "C", "saffron"},
                {"Item", "I2", ""}};
  std::vector<uint16_t> order = SelectivityProbeOrder(q, *db_, index);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);  // saffron: 1 Color row
  EXPECT_EQ(order[1], 0);  // scented: 3+ Item rows
  EXPECT_EQ(order[2], 2);  // free vertex last

  // A keyword absent from the index is maximally selective (0 rows).
  q.vertices[0].keyword = "zzznothing";
  order = SelectivityProbeOrder(q, *db_, index);
  EXPECT_EQ(order[0], 0);

  // Free vertices rank among themselves by table cardinality.
  JoinNetworkQuery free_q;
  free_q.vertices = {{"Item", "I", ""}, {"ProductType", "P", ""}};
  order = SelectivityProbeOrder(free_q, *db_, index);
  EXPECT_EQ(order[0], 1);  // ProductType: 3 rows < Item: 4 rows
  EXPECT_EQ(order[1], 0);
}

TEST_F(QueryBuilderTest, SelectivityProbeOrderWorksSpilled) {
  InvertedIndex index = InvertedIndex::Build(*db_);
  ASSERT_TRUE(index.SpillToDisk("", 2).ok());
  JoinNetworkQuery q;
  q.vertices = {{"Item", "I", "scented"}, {"Color", "C", "saffron"}};
  std::vector<uint16_t> order = SelectivityProbeOrder(q, *db_, index);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  // Ordering is profile-driven: no posting lists were read.
  EXPECT_EQ(index.io_stats().posting_reads, 0u);
}

TEST_F(QueryBuilderTest, LatticeOverloadEquivalent) {
  LatticeConfig config;
  config.max_joins = 1;
  config.num_keyword_copies = 1;
  auto lattice = LatticeGenerator::Generate(schema_, config);
  ASSERT_TRUE(lattice.ok());
  KeywordBinding binding({{"candle", {ptype_, 1}}});
  NodeId id = (*lattice)->FindTree(JoinTree::Single({ptype_, 1}));
  ASSERT_NE(id, kInvalidNode);
  auto q = BuildNodeQuery(**lattice, id, binding);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->vertices[0].keyword, "candle");
}

}  // namespace
}  // namespace kwsdbg
