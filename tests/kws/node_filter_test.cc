// Constraint push-down (paper Sec. 5): NodeFilter restricts the Phase 3
// search space and MPAN semantics become "maximal alive among the
// constrained candidates".
#include <gtest/gtest.h>

#include "baselines/return_everything.h"
#include "test_util.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class NodeFilterTest : public testing::Test {
 protected:
  ToyFixture fx_;

  KeywordBinding Q1Binding() {
    return KeywordBinding({{"saffron", {fx_.color, 1}},
                           {"scented", {fx_.item, 1}},
                           {"candle", {fx_.ptype, 1}}});
  }
};

TEST_F(NodeFilterTest, MinLevelShrinksSearchSpace) {
  PrunedLattice unfiltered = PrunedLattice::Build(*fx_.lattice, Q1Binding());
  PrunedLattice filtered = PrunedLattice::Build(*fx_.lattice, Q1Binding(),
                                                filters::MinLevel(2));
  EXPECT_LT(filtered.retained().size(), unfiltered.retained().size());
  for (NodeId id : filtered.retained()) {
    EXPECT_GE(fx_.lattice->node(id).level, 2u);
  }
  // MTNs themselves are always retained.
  EXPECT_EQ(filtered.mtns(), unfiltered.mtns());
}

TEST_F(NodeFilterTest, MinLevelChangesMpansToConstrainedMaxima) {
  // Unconstrained q1 MPANs: {P1 ⋈ I1, C1}. With min level 2, the level-1
  // node C1 is not a candidate; no level-2 sub-query containing C1 is alive
  // (I1 ⋈ C1 is dead, P-C are not adjacent), so only P1 ⋈ I1 remains.
  PrunedLattice pl = PrunedLattice::Build(*fx_.lattice, Q1Binding(),
                                          filters::MinLevel(2));
  Executor executor(fx_.db.get());
  QueryEvaluator evaluator(fx_.db.get(), &executor, &pl, fx_.index.get());
  auto strategy = MakeStrategy(TraversalKind::kScoreBased);
  auto result = strategy->Run(pl, &evaluator);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_FALSE(result->outcomes[0].alive);
  ASSERT_EQ(result->outcomes[0].mpans.size(), 1u);
  const std::string name = fx_.NodeName(result->outcomes[0].mpans[0]);
  EXPECT_NE(name.find("ProductType[1]"), std::string::npos);
  EXPECT_NE(name.find("Item[1]"), std::string::npos);
}

TEST_F(NodeFilterTest, ContainsRelationFilter) {
  PrunedLattice pl = PrunedLattice::Build(
      *fx_.lattice, Q1Binding(), filters::ContainsRelation(fx_.item));
  for (NodeId id : pl.retained()) {
    if (pl.IsMtn(id)) continue;  // MTNs bypass the filter by design
    bool has_item = false;
    for (const RelationCopy& v : fx_.lattice->node(id).tree.vertices()) {
      if (v.relation == fx_.item) has_item = true;
    }
    EXPECT_TRUE(has_item) << fx_.NodeName(id);
  }
  // C1 alone (no Item) is excluded, so q1's MPAN set loses it.
  Executor executor(fx_.db.get());
  QueryEvaluator evaluator(fx_.db.get(), &executor, &pl, fx_.index.get());
  auto strategy = MakeStrategy(TraversalKind::kBottomUpWithReuse);
  auto result = strategy->Run(pl, &evaluator);
  ASSERT_TRUE(result.ok());
  for (NodeId m : result->outcomes[0].mpans) {
    EXPECT_EQ(fx_.NodeName(m).find("Color[1]") == std::string::npos ||
                  fx_.NodeName(m).find("Item") != std::string::npos,
              true);
  }
}

TEST_F(NodeFilterTest, MinKeywordsFilter) {
  KeywordBinding binding = Q1Binding();
  PrunedLattice pl = PrunedLattice::Build(
      *fx_.lattice, binding, filters::MinKeywords(1, &binding));
  for (NodeId id : pl.retained()) {
    if (pl.IsMtn(id)) continue;
    size_t bound = 0;
    for (const RelationCopy& v : fx_.lattice->node(id).tree.vertices()) {
      if (v.copy != 0) ++bound;
    }
    EXPECT_GE(bound, 1u) << fx_.NodeName(id);
  }
}

TEST_F(NodeFilterTest, AndCombinator) {
  KeywordBinding binding = Q1Binding();
  NodeFilter combined = filters::And(filters::MinLevel(2),
                                     filters::ContainsRelation(fx_.item));
  PrunedLattice pl = PrunedLattice::Build(*fx_.lattice, binding, combined);
  for (NodeId id : pl.retained()) {
    if (pl.IsMtn(id)) continue;
    EXPECT_GE(fx_.lattice->node(id).level, 2u);
  }
}

TEST_F(NodeFilterTest, AllStrategiesAgreeUnderFilter) {
  PrunedLattice pl = PrunedLattice::Build(*fx_.lattice, Q1Binding(),
                                          filters::MinLevel(2));
  auto oracle = MakeReturnEverything();
  Executor oracle_exec(fx_.db.get());
  QueryEvaluator oracle_eval(fx_.db.get(), &oracle_exec, &pl,
                             fx_.index.get());
  auto expected = oracle->Run(pl, &oracle_eval);
  ASSERT_TRUE(expected.ok());
  for (TraversalKind kind : AllTraversalKinds()) {
    auto strategy = MakeStrategy(kind);
    Executor executor(fx_.db.get());
    QueryEvaluator evaluator(fx_.db.get(), &executor, &pl, fx_.index.get());
    auto got = strategy->Run(pl, &evaluator);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(testutil::Summarize(*got), testutil::Summarize(*expected))
        << strategy->name();
  }
}

TEST_F(NodeFilterTest, FilterReducesSqlWork) {
  auto strategy = MakeStrategy(TraversalKind::kBottomUpWithReuse);
  PrunedLattice full = PrunedLattice::Build(*fx_.lattice, Q1Binding());
  PrunedLattice small = PrunedLattice::Build(*fx_.lattice, Q1Binding(),
                                             filters::MinLevel(3));
  Executor e1(fx_.db.get()), e2(fx_.db.get());
  QueryEvaluator ev1(fx_.db.get(), &e1, &full, fx_.index.get());
  QueryEvaluator ev2(fx_.db.get(), &e2, &small, fx_.index.get());
  auto r1 = strategy->Run(full, &ev1);
  auto r2 = strategy->Run(small, &ev2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LE(r2->stats.sql_queries, r1->stats.sql_queries);
}

}  // namespace
}  // namespace kwsdbg
