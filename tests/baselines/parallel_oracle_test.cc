#include "baselines/parallel_oracle.h"

#include <gtest/gtest.h>

#include "baselines/return_everything.h"
#include "datasets/dblife.h"
#include "lattice/lattice_generator.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

TEST(ParallelOracleTest, MatchesSerialOnToyExample) {
  ToyFixture fx;
  KeywordBinding binding({{"saffron", {fx.color, 1}},
                          {"scented", {fx.item, 1}},
                          {"candle", {fx.ptype, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);

  auto serial = MakeReturnEverything();
  Executor executor(fx.db.get());
  QueryEvaluator evaluator(fx.db.get(), &executor, &pl, fx.index.get());
  auto expected = serial->Run(pl, &evaluator);
  ASSERT_TRUE(expected.ok());

  for (size_t threads : {1u, 2u, 4u, 0u}) {
    auto got = ClassifyAllParallel(pl, *fx.db, *fx.index, threads);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(testutil::Summarize(*got), testutil::Summarize(*expected))
        << threads << " threads";
  }
}

TEST(ParallelOracleTest, MatchesSerialOnDblifeWorkload) {
  DblifeConfig config;
  config.num_persons = 80;
  config.num_publications = 150;
  config.num_conferences = 10;
  config.num_organizations = 15;
  config.num_topics = 12;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 4;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  KeywordBinder binder(&ds->schema, &index, 2, 4);

  auto serial = MakeReturnEverything();
  for (const char* q : {"widom trio", "probabilistic data", "gray sigmod"}) {
    for (const KeywordBinding& binding : binder.Bind(q).interpretations) {
      PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
      if (pl.mtns().empty()) continue;
      Executor executor(ds->db.get());
      QueryEvaluator evaluator(ds->db.get(), &executor, &pl, &index);
      auto expected = serial->Run(pl, &evaluator);
      ASSERT_TRUE(expected.ok());
      auto got = ClassifyAllParallel(pl, *ds->db, index, 4);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(testutil::Summarize(*got), testutil::Summarize(*expected))
          << q;
      EXPECT_EQ(got->stats.sql_queries, expected->stats.sql_queries) << q;
    }
  }
}

TEST(ParallelOracleTest, ErrorsPropagateFromWorkers) {
  ToyFixture fx;
  KeywordBinding binding({{"saffron", {fx.color, 1}},
                          {"scented", {fx.item, 1}},
                          {"candle", {fx.ptype, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
  Database broken;  // none of the tables exist
  auto got = ClassifyAllParallel(pl, broken, *fx.index, 2);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(ParallelOracleTest, EmptySearchSpace) {
  ToyFixture fx;
  // Copy 3 does not exist in a 2-copy lattice: nothing retained.
  KeywordBinding binding({{"red", {fx.color, 3}}});
  PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
  auto got = ClassifyAllParallel(pl, *fx.db, *fx.index, 4);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->outcomes.empty());
  EXPECT_EQ(got->stats.sql_queries, 0u);
}

}  // namespace
}  // namespace kwsdbg
