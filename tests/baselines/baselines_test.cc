#include <gtest/gtest.h>

#include "baselines/return_everything.h"
#include "baselines/return_nothing.h"
#include "test_util.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class BaselinesTest : public testing::Test {
 protected:
  ToyFixture fx_;
};

TEST_F(BaselinesTest, ReturnEverythingEvaluatesEveryRetainedNode) {
  KeywordBinding binding({{"saffron", {fx_.color, 1}},
                          {"scented", {fx_.item, 1}},
                          {"candle", {fx_.ptype, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*fx_.lattice, binding);
  Executor executor(fx_.db.get());
  QueryEvaluator evaluator(fx_.db.get(), &executor, &pl, fx_.index.get());
  auto re = MakeReturnEverything();
  auto result = re->Run(pl, &evaluator);
  ASSERT_TRUE(result.ok());
  // Retained = MTN + 5 descendants; 3 are base nodes (no SQL), 3 SQL.
  EXPECT_EQ(result->stats.sql_queries, 3u);
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_FALSE(result->outcomes[0].alive);
  EXPECT_EQ(result->outcomes[0].mpans.size(), 2u);
}

TEST_F(BaselinesTest, ReturnNothingSubmitsAllSubsets) {
  ReturnNothingBaseline rn(fx_.db.get(), fx_.lattice.get(), fx_.index.get());
  auto result = rn.Run("saffron scented candle");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->submissions, 7u);  // 2^3 - 1
  EXPECT_GT(result->cns_evaluated, 0u);
  EXPECT_GT(result->alive_cns, 0u);  // sub-queries do return results
  EXPECT_GE(result->total_millis, 0.0);
}

TEST_F(BaselinesTest, ReturnNothingSingleKeyword) {
  ReturnNothingBaseline rn(fx_.db.get(), fx_.lattice.get(), fx_.index.get());
  auto result = rn.Run("vanilla");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->submissions, 1u);
  // "vanilla" occurs in Item and in Attribute: two interpretations, one
  // single-table CN each, both executed fully for display.
  EXPECT_EQ(result->sql_queries, 2u);
  EXPECT_EQ(result->rows_retrieved, 2u);
}

TEST_F(BaselinesTest, ReturnNothingIsIncomplete) {
  // RN can only surface CNs of keyword subsets, and every CN leaf is bound
  // to a keyword. For "red candle" (red -> Color, candle -> ProductType)
  // the MTN P1 - I0 - C1 routes through the free Item copy, so its
  // sub-lattice contains free-leaf sub-queries (e.g. P1 ⋈ I0, "candles of
  // any kind in stock") that no RN submission can ever return.
  KeywordBinding binding(
      {{"red", {fx_.color, 1}}, {"candle", {fx_.ptype, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*fx_.lattice, binding);
  size_t free_leaf_nodes = 0;
  for (NodeId id : pl.retained()) {
    const JoinTree& t = pl.lattice().node(id).tree;
    for (size_t leaf : t.LeafIndices()) {
      if (t.vertex(leaf).copy == 0) {
        ++free_leaf_nodes;
        break;
      }
    }
  }
  EXPECT_GT(free_leaf_nodes, 0u);
  // RN still works (it just cannot see those sub-queries).
  ReturnNothingBaseline rn(fx_.db.get(), fx_.lattice.get(), fx_.index.get());
  auto result = rn.Run("red candle");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->submissions, 3u);
}

TEST_F(BaselinesTest, ReturnNothingRejectsEmptyQuery) {
  ReturnNothingBaseline rn(fx_.db.get(), fx_.lattice.get(), fx_.index.get());
  EXPECT_FALSE(rn.Run("").ok());
}

TEST_F(BaselinesTest, ReturnNothingMissingKeywordSubsetsStillCounted) {
  ReturnNothingBaseline rn(fx_.db.get(), fx_.lattice.get(), fx_.index.get());
  auto result = rn.Run("saffron qqqq");
  ASSERT_TRUE(result.ok());
  // 3 submissions; the ones containing 'qqqq' bind nothing.
  EXPECT_EQ(result->submissions, 3u);
}

}  // namespace
}  // namespace kwsdbg
