#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/dblife.h"
#include "datasets/toy_product_db.h"
#include "datasets/workload.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace kwsdbg {
namespace {

TEST(ToyProductDbTest, MatchesFig2) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->db->num_tables(), 4u);
  const Table* item = ds->db->FindTable("Item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->num_rows(), 4u);
  EXPECT_EQ(ds->db->FindTable("Color")->num_rows(), 4u);
  EXPECT_EQ(ds->db->FindTable("ProductType")->num_rows(), 3u);
  EXPECT_EQ(ds->db->FindTable("Attribute")->num_rows(), 4u);
  // Item 1 has NULL color ("NA" in Fig. 2); color is column 3.
  EXPECT_TRUE(item->at(0, 3).is_null());
  EXPECT_EQ(item->at(0, 1).AsString(), "saffron scented oil");
  EXPECT_EQ(ds->db->TotalTuples(), 15u);
}

TEST(DblifeTest, DeterministicForSeed) {
  DblifeConfig config;
  config.num_persons = 40;
  config.num_publications = 60;
  config.num_conferences = 10;
  config.num_organizations = 12;
  config.num_topics = 10;
  auto a = GenerateDblife(config);
  auto b = GenerateDblife(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->db->TotalTuples(), b->db->TotalTuples());
  for (const std::string& name : a->db->TableNames()) {
    const Table* ta = a->db->FindTable(name);
    const Table* tb = b->db->FindTable(name);
    ASSERT_EQ(ta->num_rows(), tb->num_rows()) << name;
    for (size_t r = 0; r < ta->num_rows(); ++r) {
      for (size_t c = 0; c < ta->schema().num_columns(); ++c) {
        ASSERT_EQ(ta->at(r, c), tb->at(r, c)) << name;
      }
    }
  }
}

TEST(DblifeTest, DifferentSeedsDiffer) {
  DblifeConfig a_cfg, b_cfg;
  a_cfg.num_persons = b_cfg.num_persons = 40;
  a_cfg.num_publications = b_cfg.num_publications = 60;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  auto a = GenerateDblife(a_cfg);
  auto b = GenerateDblife(b_cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  const Table* pa = a->db->FindTable("Publication");
  const Table* pb = b->db->FindTable("Publication");
  size_t same = 0;
  for (size_t r = 0; r < std::min(pa->num_rows(), pb->num_rows()); ++r) {
    if (pa->at(r, 1) == pb->at(r, 1)) ++same;
  }
  EXPECT_LT(same, pa->num_rows() / 2);
}

TEST(DblifeTest, FourteenTablesFiveWithText) {
  auto ds = GenerateDblife(DblifeConfig{});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->db->num_tables(), 14u);
  size_t with_text = 0;
  for (const std::string& name : ds->db->TableNames()) {
    if (!ds->db->FindTable(name)->schema().TextColumnIndices().empty()) {
      ++with_text;
    }
  }
  EXPECT_EQ(with_text, 5u);  // paper: keywords live in 5 entity tables
}

TEST(DblifeTest, WorkloadTermPlacementMatchesPaper) {
  auto ds = GenerateDblife(DblifeConfig{});
  ASSERT_TRUE(ds.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  // Person-only surnames.
  for (const char* name : {"widom", "hristidis", "agrawal", "chaudhuri",
                           "derose", "dewitt"}) {
    auto tables = index.TablesContaining(name);
    ASSERT_FALSE(tables.empty()) << name;
    EXPECT_TRUE(index.TableContains(name, "Person")) << name;
  }
  // "Washington" occurs in Person, Publication, and Organization (Sec. 3.2).
  EXPECT_TRUE(index.TableContains("washington", "Person"));
  EXPECT_TRUE(index.TableContains("washington", "Publication"));
  EXPECT_TRUE(index.TableContains("washington", "Organization"));
  // Venues.
  EXPECT_TRUE(index.TableContains("vldb", "Conference"));
  EXPECT_TRUE(index.TableContains("sigmod", "Conference"));
  // Topic / publication terms.
  EXPECT_TRUE(index.TableContains("tutorial", "Publication"));
  EXPECT_TRUE(index.TableContains("trio", "Topic"));
  EXPECT_TRUE(index.TableContains("probabilistic", "Publication"));
  EXPECT_TRUE(index.TableContains("histograms", "Topic"));
  EXPECT_TRUE(index.TableContains("xml", "Topic"));
  EXPECT_TRUE(index.TableContains("data", "Topic"));
}

TEST(DblifeTest, EveryWorkloadKeywordOccursSomewhere) {
  auto ds = GenerateDblife(DblifeConfig{});
  ASSERT_TRUE(ds.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  for (const WorkloadQuery& q : PaperWorkload()) {
    for (const std::string& kw : TokenizeUnique(q.text)) {
      EXPECT_TRUE(index.Contains(kw)) << q.id << ": " << kw;
    }
  }
}

TEST(DblifeTest, ForeignKeysReferenceExistingRows) {
  DblifeConfig config;
  config.num_persons = 50;
  config.num_publications = 80;
  config.num_conferences = 10;
  config.num_organizations = 12;
  config.num_topics = 10;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  for (const JoinEdge& e : ds->schema.edges()) {
    const Table* from = ds->db->FindTable(ds->schema.relation(e.from).name);
    const Table* to = ds->db->FindTable(ds->schema.relation(e.to).name);
    size_t from_col = *from->schema().ColumnIndex(e.from_column);
    for (size_t r = 0; r < from->num_rows(); ++r) {
      const Value& fk = from->at(r, from_col);
      ASSERT_TRUE(fk.is_int());
      EXPECT_GE(fk.AsInt(), 1);
      EXPECT_LE(fk.AsInt(), static_cast<int64_t>(to->num_rows()));
    }
  }
}

TEST(DblifeTest, CoauthorHasNoSelfLoops) {
  auto ds = GenerateDblife(DblifeConfig{});
  ASSERT_TRUE(ds.ok());
  const Table* co = ds->db->FindTable("coauthor_of");
  ASSERT_NE(co, nullptr);
  EXPECT_GT(co->num_rows(), 0u);
  for (size_t r = 0; r < co->num_rows(); ++r) {
    EXPECT_FALSE(co->at(r, 1).SqlEquals(co->at(r, 2)));
  }
}

TEST(DblifeTest, ScaledConfigGrows) {
  DblifeConfig base;
  DblifeConfig big = base.Scaled(2.0);
  EXPECT_GT(big.num_persons, base.num_persons);
  EXPECT_GT(big.num_publications, base.num_publications);
  EXPECT_GT(big.relationship_scale, base.relationship_scale);
}

TEST(WorkloadTest, TenQueriesMatchTable2) {
  const auto& w = PaperWorkload();
  ASSERT_EQ(w.size(), 10u);
  EXPECT_EQ(w[0].id, "Q1");
  EXPECT_EQ(w[0].text, "Widom Trio");
  EXPECT_EQ(w[2].text, "Agrawal Chaudhuri Das");
  EXPECT_EQ(w[7].text, "Probabilistic Data Washington");
  EXPECT_EQ(w[9].id, "Q10");
}

}  // namespace
}  // namespace kwsdbg
