#include "datasets/ecommerce.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace {

TEST(EcommerceTest, SchemaShapeMatchesToySchema) {
  auto ds = GenerateEcommerce();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->db->num_tables(), 4u);
  EXPECT_EQ(ds->schema.num_relations(), 4u);
  EXPECT_EQ(ds->schema.num_edges(), 3u);
  EXPECT_TRUE(ds->schema.ValidateAgainst(*ds->db).ok());
}

TEST(EcommerceTest, DeterministicForSeed) {
  EcommerceConfig config;
  config.num_items = 100;
  auto a = GenerateEcommerce(config);
  auto b = GenerateEcommerce(config);
  ASSERT_TRUE(a.ok() && b.ok());
  const Table* ia = a->db->FindTable("Item");
  const Table* ib = b->db->FindTable("Item");
  ASSERT_EQ(ia->num_rows(), ib->num_rows());
  for (size_t r = 0; r < ia->num_rows(); ++r) {
    EXPECT_EQ(ia->at(r, 1), ib->at(r, 1));
  }
}

TEST(EcommerceTest, SaffronIsNotAColorSynonym) {
  auto ds = GenerateEcommerce();
  ASSERT_TRUE(ds.ok());
  const Table* color = ds->db->FindTable("Color");
  for (size_t r = 0; r < color->num_rows(); ++r) {
    EXPECT_FALSE(
        ContainsCaseInsensitive(color->at(r, 1).AsString(), "saffron"));
    EXPECT_FALSE(
        ContainsCaseInsensitive(color->at(r, 2).AsString(), "saffron"));
  }
  // But saffron IS a scent, and appears in item names.
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  EXPECT_TRUE(index.TableContains("saffron", "Attribute"));
  EXPECT_TRUE(index.TableContains("saffron", "Item"));
  EXPECT_FALSE(index.TableContains("saffron", "Color"));
}

TEST(EcommerceTest, NullColorRateApproximatelyRespected) {
  EcommerceConfig config;
  config.num_items = 2000;
  config.null_color_rate = 0.25;
  auto ds = GenerateEcommerce(config);
  ASSERT_TRUE(ds.ok());
  const Table* item = ds->db->FindTable("Item");
  size_t nulls = 0;
  for (size_t r = 0; r < item->num_rows(); ++r) {
    if (item->at(r, 3).is_null()) ++nulls;
  }
  double rate = static_cast<double>(nulls) / 2000.0;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(EcommerceTest, ForeignKeysValid) {
  auto ds = GenerateEcommerce();
  ASSERT_TRUE(ds.ok());
  const Table* item = ds->db->FindTable("Item");
  const int64_t ptypes =
      static_cast<int64_t>(ds->db->FindTable("ProductType")->num_rows());
  const int64_t colors =
      static_cast<int64_t>(ds->db->FindTable("Color")->num_rows());
  for (size_t r = 0; r < item->num_rows(); ++r) {
    EXPECT_GE(item->at(r, 2).AsInt(), 1);
    EXPECT_LE(item->at(r, 2).AsInt(), ptypes);
    if (!item->at(r, 3).is_null()) {
      EXPECT_GE(item->at(r, 3).AsInt(), 1);
      EXPECT_LE(item->at(r, 3).AsInt(), colors);
    }
  }
}

TEST(EcommerceTest, AddColorSynonymUpdatesRow) {
  auto ds = GenerateEcommerce();
  ASSERT_TRUE(ds.ok());
  auto added = AddColorSynonym(ds->db.get(), "yellow", "saffron");
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(*added);
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  EXPECT_TRUE(index.TableContains("saffron", "Color"));
}

TEST(EcommerceTest, AddColorSynonymUnknownColor) {
  auto ds = GenerateEcommerce();
  ASSERT_TRUE(ds.ok());
  auto added = AddColorSynonym(ds->db.get(), "chartreuse-nope", "x");
  ASSERT_TRUE(added.ok());
  EXPECT_FALSE(*added);
}

TEST(EcommerceTest, AddColorSynonymCaseInsensitiveName) {
  auto ds = GenerateEcommerce();
  ASSERT_TRUE(ds.ok());
  auto added = AddColorSynonym(ds->db.get(), "YeLLoW", "saffron");
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(*added);
}

}  // namespace
}  // namespace kwsdbg
