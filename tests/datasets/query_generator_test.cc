#include "datasets/query_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/dblife.h"
#include "text/tokenizer.h"

namespace kwsdbg {
namespace {

class QueryGeneratorTest : public testing::Test {
 protected:
  void SetUp() override {
    DblifeConfig config;
    config.num_persons = 50;
    config.num_publications = 80;
    config.num_conferences = 10;
    config.num_organizations = 12;
    config.num_topics = 10;
    auto ds = GenerateDblife(config);
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    index_ = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db_));
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(QueryGeneratorTest, KeywordsComeFromVocabulary) {
  RandomQueryGenerator generator(index_.get());
  for (int i = 0; i < 50; ++i) {
    std::string q = generator.Next();
    ASSERT_FALSE(q.empty());
    for (const std::string& kw : TokenizeUnique(q)) {
      EXPECT_TRUE(index_->Contains(kw)) << kw;
    }
  }
}

TEST_F(QueryGeneratorTest, KeywordCountWithinBounds) {
  QueryGeneratorConfig config;
  config.min_keywords = 2;
  config.max_keywords = 3;
  RandomQueryGenerator generator(index_.get(), config);
  for (int i = 0; i < 50; ++i) {
    const size_t k = TokenizeUnique(generator.Next()).size();
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 3u);
  }
}

TEST_F(QueryGeneratorTest, DeterministicForSeed) {
  QueryGeneratorConfig config;
  config.seed = 99;
  RandomQueryGenerator a(index_.get(), config);
  RandomQueryGenerator b(index_.get(), config);
  EXPECT_EQ(a.Batch(20), b.Batch(20));
}

TEST_F(QueryGeneratorTest, DifferentSeedsDiffer) {
  QueryGeneratorConfig ca, cb;
  ca.seed = 1;
  cb.seed = 2;
  RandomQueryGenerator a(index_.get(), ca);
  RandomQueryGenerator b(index_.get(), cb);
  EXPECT_NE(a.Batch(20), b.Batch(20));
}

TEST_F(QueryGeneratorTest, MinTermLengthRespected) {
  QueryGeneratorConfig config;
  config.min_term_length = 5;
  RandomQueryGenerator generator(index_.get(), config);
  for (int i = 0; i < 30; ++i) {
    for (const std::string& kw : TokenizeUnique(generator.Next())) {
      EXPECT_GE(kw.size(), 5u) << kw;
    }
  }
}

TEST_F(QueryGeneratorTest, PopularityBiasPrefersFrequentTerms) {
  QueryGeneratorConfig skewed;
  skewed.popularity_theta = 1.2;
  skewed.min_keywords = skewed.max_keywords = 1;
  RandomQueryGenerator generator(index_.get(), skewed);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(generator.Next());
  // Heavy skew concentrates on a small head of the vocabulary.
  EXPECT_LT(seen.size(), generator.vocabulary_size() / 2);
}

TEST_F(QueryGeneratorTest, NoDuplicateKeywordsWithinQuery) {
  QueryGeneratorConfig config;
  config.min_keywords = config.max_keywords = 3;
  config.popularity_theta = 2.0;  // high collision pressure
  RandomQueryGenerator generator(index_.get(), config);
  for (int i = 0; i < 50; ++i) {
    std::string q = generator.Next();
    auto tokens = TokenizeUnique(q);
    // TokenizeUnique dedups; equal size means no duplicates were emitted.
    EXPECT_EQ(tokens.size(), Tokenize(q).size());
  }
}

}  // namespace
}  // namespace kwsdbg
