#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(TokenizerTest, BasicSplitAndLowercase) {
  EXPECT_EQ(Tokenize("Keyword Search, 2015!"),
            (std::vector<std::string>{"keyword", "search", "2015"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize(" .,;-!").empty());
}

TEST(TokenizerTest, HyphenatedAndApostrophes) {
  EXPECT_EQ(Tokenize("hand-made O'Neil"),
            (std::vector<std::string>{"hand", "made", "o", "neil"}));
}

TEST(TokenizerTest, NumbersKept) {
  EXPECT_EQ(Tokenize("burn time 50 hrs 6.4 oz"),
            (std::vector<std::string>{"burn", "time", "50", "hrs", "6", "4",
                                      "oz"}));
}

TEST(TokenizerTest, UniquePreservesFirstOccurrenceOrder) {
  EXPECT_EQ(TokenizeUnique("data Data stream data"),
            (std::vector<std::string>{"data", "stream"}));
}

TEST(TokenizerTest, UniqueNoDuplicatesIsIdentity) {
  EXPECT_EQ(TokenizeUnique("saffron scented candle"),
            (std::vector<std::string>{"saffron", "scented", "candle"}));
}

}  // namespace
}  // namespace kwsdbg
