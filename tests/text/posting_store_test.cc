#include "text/posting_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/database.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace {

std::vector<Posting> List(std::initializer_list<uint32_t> rows) {
  std::vector<Posting> out;
  for (uint32_t r : rows) out.push_back(Posting{0, r, 0});
  return out;
}

TEST(PostingStoreTest, FetchReturnsStoredLists) {
  std::vector<Posting> a = List({1, 2, 3});
  std::vector<Posting> b = List({9});
  std::vector<Posting> empty;
  std::vector<const std::vector<Posting>*> lists = {&a, &b, &empty};
  auto store = PostingStore::Create("", lists, /*cache_lists=*/2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_lists(), 3u);
  EXPECT_EQ((*store)->Fetch(0), a);
  EXPECT_EQ((*store)->Fetch(1), b);
  EXPECT_TRUE((*store)->Fetch(2).empty());
}

TEST(PostingStoreTest, LruCacheServesRepeatsWithoutIo) {
  std::vector<Posting> a = List({1});
  std::vector<Posting> b = List({2});
  std::vector<Posting> c = List({3});
  std::vector<const std::vector<Posting>*> lists = {&a, &b, &c};
  auto store = PostingStore::Create("", lists, /*cache_lists=*/2);
  ASSERT_TRUE(store.ok());

  (void)(*store)->Fetch(0);
  size_t reads = (*store)->stats().posting_reads;
  (void)(*store)->Fetch(0);  // cached
  EXPECT_EQ((*store)->stats().posting_reads, reads);
  EXPECT_GE((*store)->stats().posting_cache_hits, 1u);

  (void)(*store)->Fetch(1);
  (void)(*store)->Fetch(2);  // capacity 2: list 0 evicted
  reads = (*store)->stats().posting_reads;
  EXPECT_EQ((*store)->Fetch(0), a);
  EXPECT_GT((*store)->stats().posting_reads, reads);
}

std::unique_ptr<Database> TextDb() {
  auto db = std::make_unique<Database>();
  auto docs = db->CreateTable(
      "docs", Schema({{"id", DataType::kInt64}, {"body", DataType::kString}}));
  auto notes = db->CreateTable(
      "notes", Schema({{"id", DataType::kInt64}, {"text", DataType::kString}}));
  EXPECT_TRUE(docs.ok() && notes.ok());
  int64_t id = 0;
  for (const char* body :
       {"database systems", "keyword search", "search engines",
        "the database keyword debugger", "researching databases"}) {
    (*docs)->AppendRowUnchecked({Value(id++), Value(std::string(body))});
  }
  (*notes)->AppendRowUnchecked({Value(id++), Value(std::string("search notes"))});
  return db;
}

TEST(PostingStoreTest, SpilledIndexMatchesResidentIndex) {
  auto db = TextDb();
  InvertedIndex resident = InvertedIndex::Build(*db);
  InvertedIndex spilled = InvertedIndex::Build(*db);
  ASSERT_TRUE(spilled.SpillToDisk("", /*cache_lists=*/2).ok());
  ASSERT_TRUE(spilled.spilled());

  ASSERT_EQ(resident.num_terms(), spilled.num_terms());
  for (const std::string& term : resident.Terms()) {
    EXPECT_EQ(resident.PostingsFor(term), spilled.PostingsFor(term))
        << "postings diverge for '" << term << "'";
    EXPECT_EQ(resident.TablesContaining(term), spilled.TablesContaining(term));
    EXPECT_EQ(resident.RowFrequency(term, "docs"),
              spilled.RowFrequency(term, "docs"));
  }
  EXPECT_GT(spilled.io_stats().posting_reads, 0u);
  EXPECT_EQ(resident.io_stats().posting_reads, 0u);
}

// The dictionary scan must agree with the old per-entry substring scan:
// exact term, proper infix, and missing infix all behave identically in
// resident and spilled mode.
TEST(PostingStoreTest, TermIdsContainingParity) {
  auto db = TextDb();
  InvertedIndex resident = InvertedIndex::Build(*db);
  InvertedIndex spilled = InvertedIndex::Build(*db);
  ASSERT_TRUE(spilled.SpillToDisk("", 2).ok());

  for (const std::string& infix :
       {std::string("search"), std::string("data"), std::string("base"),
        std::string("databas"), std::string("zzz_missing"), std::string("e"),
        std::string("keyword")}) {
    std::vector<uint32_t> r_ids = resident.TermIdsContaining(infix);
    std::vector<uint32_t> s_ids = spilled.TermIdsContaining(infix);
    EXPECT_EQ(r_ids, s_ids) << "ids diverge for '" << infix << "'";

    // Old behavior: one list per term whose text contains the infix.
    std::vector<const std::vector<Posting>*> old_lists =
        resident.PostingListsContaining(infix);
    ASSERT_EQ(old_lists.size(), r_ids.size()) << "for '" << infix << "'";
    for (size_t i = 0; i < r_ids.size(); ++i) {
      EXPECT_NE(resident.TermOfId(r_ids[i]).find(infix), std::string::npos);
      EXPECT_EQ(*old_lists[i], spilled.PostingsForTermId(s_ids[i]));
    }
  }

  // Exact-term lookup agrees with the dictionary route.
  EXPECT_TRUE(resident.Contains("database"));
  EXPECT_FALSE(resident.Contains("databasex"));
  std::vector<uint32_t> exact = resident.TermIdsContaining("keyword");
  bool found = false;
  for (uint32_t id : exact) found |= resident.TermOfId(id) == "keyword";
  EXPECT_TRUE(found);
}

TEST(PostingStoreTest, ProfileCountsAreExactRowCounts) {
  auto db = TextDb();
  InvertedIndex index = InvertedIndex::Build(*db);
  // "search" occurs in docs rows 1, 2 and notes row 0.
  EXPECT_EQ(index.RowFrequency("search", "docs"), 2u);
  EXPECT_EQ(index.RowFrequency("search", "notes"), 1u);
  EXPECT_EQ(index.RowFrequency("database", "docs"), 2u);
  EXPECT_EQ(index.RowFrequency("database", "notes"), 0u);

  // EstimatedInfixRows sums profile counts over matching terms — an upper
  // bound, exact at zero.
  EXPECT_GE(index.EstimatedInfixRows("search", "docs"), 2u);
  EXPECT_EQ(index.EstimatedInfixRows("qqqq", "docs"), 0u);
  // "databas" matches database/databases; both rows counted.
  EXPECT_GE(index.EstimatedInfixRows("databas", "docs"), 2u);
}

}  // namespace
}  // namespace kwsdbg
