// Rebuild-vs-incremental parity oracle for the inverted index: after any
// sequence of ApplyRowInsert / ApplyRowDelete / ApplyCellUpdate (and
// RemapRows after compaction), the incrementally maintained index must
// answer exactly like InvertedIndex::Build over the current database —
// structurally on a resident index, behaviorally on a spilled one.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/database.h"
#include "text/inverted_index.h"
#include "text/posting.h"

namespace kwsdbg {
namespace {

// Two-table catalog with overlapping vocabulary so per-table profile counts
// and table masks are exercised, not just posting lists. Built in place —
// Database is pinned (non-movable).
void BuildDb(Database* out) {
  Database& db = *out;
  Table* a = *db.CreateTable(
      "articles", Schema({{"id", DataType::kInt64},
                          {"title", DataType::kString},
                          {"body", DataType::kString}}));
  Table* c = *db.CreateTable(
      "comments", Schema({{"id", DataType::kInt64},
                          {"text", DataType::kString}}));
  const char* titles[] = {"keyword search systems", "join network debugging",
                          "lattice traversal", "keyword debugging"};
  const char* bodies[] = {"non answer provenance", "candidate network pruning",
                          "search lattice", "provenance pruning"};
  for (int i = 0; i < 4; ++i) {
    a->AppendRowUnchecked({Value(static_cast<int64_t>(i)), Value(titles[i]),
                           Value(bodies[i])});
  }
  const char* comments[] = {"great keyword paper", "pruning is subtle",
                            "lattice walk"};
  for (int i = 0; i < 3; ++i) {
    c->AppendRowUnchecked({Value(static_cast<int64_t>(i)), Value(comments[i])});
  }

}

// Structural parity: every observable of the live index equals a
// from-scratch rebuild. Resident indexes only (spilled references
// invalidate across fetches; see ExpectBehavioralParity).
void ExpectStructuralParity(const InvertedIndex& live, const Database& db) {
  const InvertedIndex fresh = InvertedIndex::Build(db);
  ASSERT_EQ(live.Terms(), fresh.Terms());
  EXPECT_EQ(live.num_postings(), fresh.num_postings());
  for (const std::string& term : fresh.Terms()) {
    const std::vector<Posting>& got = live.PostingsFor(term);
    const std::vector<Posting>& want = fresh.PostingsFor(term);
    ASSERT_EQ(got.size(), want.size()) << "term '" << term << "'";
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "term '" << term << "' posting " << i;
    }
    for (const std::string& table : db.TableNames()) {
      EXPECT_EQ(live.RowFrequency(term, table), fresh.RowFrequency(term, table))
          << "term '" << term << "' in " << table;
      EXPECT_EQ(live.TableContains(term, table),
                fresh.TableContains(term, table))
          << "term '" << term << "' in " << table;
    }
  }
}

// Behavioral parity for a spilled live index: same answers, even though the
// dictionary may keep emptied terms that a rebuild would drop. Posting
// references on a spilled index die at the next fetch, so the live list is
// copied before the fresh index is consulted.
void ExpectBehavioralParity(const InvertedIndex& live, const Database& db) {
  const InvertedIndex fresh = InvertedIndex::Build(db);
  EXPECT_EQ(live.num_postings(), fresh.num_postings());
  for (const std::string& term : fresh.Terms()) {
    const std::vector<Posting> got = live.PostingsFor(term);  // copy first
    const std::vector<Posting>& want = fresh.PostingsFor(term);
    ASSERT_EQ(got.size(), want.size()) << "term '" << term << "'";
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "term '" << term << "' posting " << i;
    }
    for (const std::string& table : db.TableNames()) {
      EXPECT_EQ(live.RowFrequency(term, table), fresh.RowFrequency(term, table))
          << "term '" << term << "' in " << table;
    }
  }
  // Terms the rebuild no longer knows must behave absent in the live index.
  for (const std::string& term : live.Terms()) {
    if (!fresh.Contains(term)) {
      EXPECT_FALSE(live.Contains(term)) << "emptied term '" << term << "'";
      EXPECT_TRUE(live.PostingsFor(term).empty());
    }
  }
}

TEST(IncrementalIndexTest, InsertWithExistingVocabularyKeepsParity) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  const uint64_t version = index.version();
  Table* a = db.FindTable("articles");

  ASSERT_TRUE(a->AppendRow({Value(int64_t{4}), Value("keyword lattice"),
                            Value("pruning search")})
                  .ok());
  auto patches = index.ApplyRowInsert(*a, 4);
  ASSERT_TRUE(patches.ok());
  EXPECT_EQ(*patches, 4u);
  EXPECT_EQ(index.version(), version);  // vocabulary unchanged: no refinalize
  ExpectStructuralParity(index, db);
}

TEST(IncrementalIndexTest, VocabularyNewTermRefinalizesDictionary) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  const uint64_t version = index.version();
  Table* c = db.FindTable("comments");

  ASSERT_TRUE(
      c->AppendRow({Value(int64_t{3}), Value("zyzzyva keyword")}).ok());
  ASSERT_TRUE(index.ApplyRowInsert(*c, 3).ok());
  EXPECT_GT(index.version(), version);  // term ids shifted
  EXPECT_TRUE(index.Contains("zyzzyva"));
  EXPECT_TRUE(index.TableContains("zyzzyva", "comments"));
  ExpectStructuralParity(index, db);
}

TEST(IncrementalIndexTest, DeleteBeforeBlankingKeepsParity) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  Table* a = db.FindTable("articles");

  // Row 0 is the only holder of "systems"; "keyword" survives in rows 3/4
  // and in comments. The patch runs BEFORE DeleteRow blanks the cells.
  ASSERT_TRUE(index.ApplyRowDelete(*a, 0).ok());
  ASSERT_TRUE(a->DeleteRow(0).ok());

  EXPECT_FALSE(index.Contains("systems"));
  EXPECT_TRUE(index.TableContains("keyword", "articles"));
  ExpectStructuralParity(index, db);

  // Deleting every remaining "keyword" row of articles clears the table
  // mask but keeps the term alive through comments.
  ASSERT_TRUE(index.ApplyRowDelete(*a, 3).ok());
  ASSERT_TRUE(a->DeleteRow(3).ok());
  EXPECT_FALSE(index.TableContains("keyword", "articles"));
  EXPECT_TRUE(index.TableContains("keyword", "comments"));
  ExpectStructuralParity(index, db);
}

TEST(IncrementalIndexTest, CellUpdateKeepsParity) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  Table* a = db.FindTable("articles");

  // Overlap between old and new terms ("lattice" stays, "traversal" goes,
  // "descent" arrives) exercises the no-op, remove, and add paths at once.
  const Value old_value = a->at(2, 1);
  ASSERT_TRUE(a->SetValue(2, 1, Value(std::string("lattice descent"))).ok());
  ASSERT_TRUE(index.ApplyCellUpdate(*a, 2, 1, old_value).ok());

  EXPECT_FALSE(index.TableContains("traversal", "articles"));
  EXPECT_TRUE(index.Contains("descent"));
  ExpectStructuralParity(index, db);

  // Update to NULL removes every old term of the cell.
  const Value old_body = a->at(2, 2);
  ASSERT_TRUE(a->SetValue(2, 2, Value()).ok());
  ASSERT_TRUE(index.ApplyCellUpdate(*a, 2, 2, old_body).ok());
  ExpectStructuralParity(index, db);
}

TEST(IncrementalIndexTest, RemapRowsAfterCompactKeepsParity) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  Table* a = db.FindTable("articles");

  ASSERT_TRUE(index.ApplyRowDelete(*a, 1).ok());
  ASSERT_TRUE(a->DeleteRow(1).ok());
  auto remap = a->Compact();
  ASSERT_TRUE(remap.ok());
  ASSERT_TRUE(index.RemapRows("articles", *remap).ok());

  ExpectStructuralParity(index, db);
}

TEST(IncrementalIndexTest, SpilledDeltaOverlayKeepsBehavioralParity) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  ASSERT_TRUE(index.SpillToDisk("", /*cache_lists=*/4).ok());
  Table* a = db.FindTable("articles");
  Table* c = db.FindTable("comments");

  // Insert (existing vocabulary), delete, and update through the overlay.
  ASSERT_TRUE(a->AppendRow({Value(int64_t{4}), Value("keyword pruning"),
                            Value("lattice search")})
                  .ok());
  ASSERT_TRUE(index.ApplyRowInsert(*a, 4).ok());
  ASSERT_TRUE(index.ApplyRowDelete(*c, 1).ok());
  ASSERT_TRUE(c->DeleteRow(1).ok());
  const Value old_value = c->at(0, 1);
  ASSERT_TRUE(c->SetValue(0, 1, Value(std::string("great paper"))).ok());
  ASSERT_TRUE(index.ApplyCellUpdate(*c, 0, 1, old_value).ok());

  EXPECT_TRUE(index.spilled());
  ExpectBehavioralParity(index, db);
}

TEST(IncrementalIndexTest, SpilledEmptiedTermBehavesAbsent) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  ASSERT_TRUE(index.SpillToDisk("", /*cache_lists=*/4).ok());
  Table* a = db.FindTable("articles");

  // "systems" occurs only in articles row 0. After the delete the term is
  // still in the on-disk dictionary but must answer like a rebuild: absent.
  ASSERT_TRUE(index.ApplyRowDelete(*a, 0).ok());
  ASSERT_TRUE(a->DeleteRow(0).ok());

  EXPECT_FALSE(index.Contains("systems"));
  EXPECT_FALSE(index.TableContains("systems", "articles"));
  EXPECT_TRUE(index.PostingsFor("systems").empty());
  EXPECT_EQ(index.RowFrequency("systems", "articles"), 0u);
  ExpectBehavioralParity(index, db);
}

TEST(IncrementalIndexTest, SpilledRejectsVocabularyNewTermAtomically) {
  Database db;
  BuildDb(&db);
  InvertedIndex index = InvertedIndex::Build(db);
  ASSERT_TRUE(index.SpillToDisk("", /*cache_lists=*/4).ok());
  const size_t postings_before = index.num_postings();
  Table* a = db.FindTable("articles");

  // The row mixes known terms with a vocabulary-new one: the patch must be
  // rejected whole, not applied up to the offending term.
  ASSERT_TRUE(a->AppendRow({Value(int64_t{4}), Value("keyword xylophone"),
                            Value("search")})
                  .ok());
  auto patches = index.ApplyRowInsert(*a, 4);
  ASSERT_FALSE(patches.ok());
  EXPECT_EQ(patches.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(index.num_postings(), postings_before);
  EXPECT_TRUE(index.PostingsFor("keyword").size() > 0);
  for (const Posting& p : index.PostingsFor("keyword")) {
    EXPECT_NE(p.row, 4u);  // nothing from the rejected row leaked in
  }

  // RemapRows is likewise refused while spilled.
  EXPECT_EQ(index.RemapRows("articles", {0, 1, 2, 3, 4}).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace kwsdbg
