#include "text/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/toy_product_db.h"

namespace kwsdbg {
namespace {

class InvertedIndexTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    db_ = std::move(ds->db);
    index_ = InvertedIndex::Build(*db_);
  }

  std::unique_ptr<Database> db_;
  InvertedIndex index_{InvertedIndex::Build(Database{})};
};

TEST_F(InvertedIndexTest, TablesContainingKeyword) {
  // "saffron" occurs in Color (name), Attribute (value), and Item (name +
  // description of item 3).
  std::vector<std::string> tables = index_.TablesContaining("saffron");
  std::sort(tables.begin(), tables.end());
  EXPECT_EQ(tables,
            (std::vector<std::string>{"Attribute", "Color", "Item"}));
}

TEST_F(InvertedIndexTest, CandleInProductTypeAndItem) {
  std::vector<std::string> tables = index_.TablesContaining("candle");
  std::sort(tables.begin(), tables.end());
  EXPECT_EQ(tables, (std::vector<std::string>{"Item", "ProductType"}));
}

TEST_F(InvertedIndexTest, MissingTermEmpty) {
  EXPECT_TRUE(index_.TablesContaining("zzzunknown").empty());
  EXPECT_FALSE(index_.Contains("zzzunknown"));
  EXPECT_TRUE(index_.PostingsFor("zzzunknown").empty());
}

TEST_F(InvertedIndexTest, TableContains) {
  EXPECT_TRUE(index_.TableContains("scented", "Item"));
  EXPECT_FALSE(index_.TableContains("scented", "Color"));
  EXPECT_FALSE(index_.TableContains("scented", "NoSuchTable"));
}

TEST_F(InvertedIndexTest, RowFrequencyCountsRowsNotOccurrences) {
  // "scented" appears in items 1, 2, 3 (names) and 3, 4 (descriptions):
  // rows {1,2,3,4} minus dedup = 4 rows.
  EXPECT_EQ(index_.RowFrequency("scented", "Item"), 4u);
  EXPECT_EQ(index_.RowFrequency("candle", "ProductType"), 1u);
  EXPECT_EQ(index_.RowFrequency("nope", "Item"), 0u);
}

TEST_F(InvertedIndexTest, TokenizationIsCaseInsensitive) {
  EXPECT_TRUE(index_.Contains("vanilla"));
  // Terms are stored lower-cased; queries must be lower-cased by callers
  // (the binder tokenizes, which lower-cases).
  EXPECT_FALSE(index_.Contains("Vanilla"));
}

TEST_F(InvertedIndexTest, PostingsPointAtRealOccurrences) {
  const auto& postings = index_.PostingsFor("checkered");
  ASSERT_FALSE(postings.empty());
  for (const Posting& p : postings) {
    const std::string& table = index_.table_names()[p.table_id];
    const Table* t = db_->FindTable(table);
    ASSERT_NE(t, nullptr);
    const Value& v = t->at(p.row, p.column);
    ASSERT_TRUE(v.is_string());
    EXPECT_NE(v.AsString().find("checkered"), std::string::npos);
  }
}

TEST_F(InvertedIndexTest, NumPostingsPositive) {
  EXPECT_GT(index_.num_postings(), 0u);
  EXPECT_GT(index_.num_terms(), 10u);
}

TEST(InvertedIndexEmptyTest, EmptyDatabase) {
  Database db;
  InvertedIndex index = InvertedIndex::Build(db);
  EXPECT_EQ(index.num_terms(), 0u);
  EXPECT_TRUE(index.TablesContaining("x").empty());
}

}  // namespace
}  // namespace kwsdbg
