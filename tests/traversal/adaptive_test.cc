// Adaptive traversal tier (traversal/pa_model.h, strategy_planner.h):
// model learning/decay/freeze semantics, planner explore/exploit behaviour,
// and the two safety properties the tier is gated on — a cold model
// reproduces static SBH @ 0.5 bit for bit, and planner decisions never
// change a classification (verdicts are ground truth; see DESIGN.md).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "debugger/non_answer_debugger.h"
#include "test_util.h"
#include "traversal/pa_model.h"
#include "traversal/strategies.h"
#include "traversal/strategy_planner.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

// ---- PaModel ----

TEST(PaModelTest, ColdBucketReturnsPrior) {
  PaModel model;
  EXPECT_DOUBLE_EQ(model.Estimate(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(model.Estimate(3, 7), 0.5);
  EXPECT_EQ(model.observations(), 0u);
  EXPECT_TRUE(model.Snapshot().empty());
}

TEST(PaModelTest, BelowMinObservationsStaysAtPrior) {
  PaModel model;  // min_observations = 4
  for (int i = 0; i < 3; ++i) model.Observe(2, 1, /*alive=*/true);
  EXPECT_DOUBLE_EQ(model.Estimate(2, 1), 0.5);
  model.Observe(2, 1, true);
  EXPECT_GT(model.Estimate(2, 1), 0.5);
}

TEST(PaModelTest, LearnsSmoothedAliveFraction) {
  PaModel model;
  for (int i = 0; i < 8; ++i) model.Observe(1, 2, true);
  for (int i = 0; i < 2; ++i) model.Observe(1, 2, false);
  // (8 + 0.5 * 2) / (10 + 2) = 0.75 with the default prior smoothing.
  EXPECT_DOUBLE_EQ(model.Estimate(1, 2), 0.75);
  // Other buckets are untouched.
  EXPECT_DOUBLE_EQ(model.Estimate(2, 2), 0.5);
  EXPECT_DOUBLE_EQ(model.Estimate(1, 3), 0.5);
}

TEST(PaModelTest, EstimatesClampAtTheExtremes) {
  PaModel model;
  for (int i = 0; i < 50; ++i) model.Observe(1, 0, true);
  for (int i = 0; i < 50; ++i) model.Observe(2, 0, false);
  EXPECT_DOUBLE_EQ(model.Estimate(1, 0), 0.9);
  EXPECT_DOUBLE_EQ(model.Estimate(2, 0), 0.1);
}

TEST(PaModelTest, FirstSyncSetsVersionWithoutDecay) {
  PaModel model;
  for (int i = 0; i < 10; ++i) model.Observe(1, 1, true);
  EXPECT_EQ(model.data_version(), 0u);
  model.SyncDataVersion(42);
  EXPECT_EQ(model.data_version(), 42u);
  EXPECT_EQ(model.observations(), 10u);  // no decay on the first sync
  model.SyncDataVersion(42);
  EXPECT_EQ(model.observations(), 10u);  // same version: no-op
  model.SyncDataVersion(43);
  EXPECT_EQ(model.observations(), 5u);  // change: counts halve
  auto snapshot = model.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].alive, 5u);
  EXPECT_EQ(snapshot[0].total, 5u);
}

TEST(PaModelTest, FreezeStopsObservationAndDecay) {
  PaModel model;
  for (int i = 0; i < 10; ++i) model.Observe(1, 1, true);
  model.SyncDataVersion(1);
  model.Freeze();
  model.Observe(1, 1, false);
  EXPECT_EQ(model.observations(), 10u);
  model.SyncDataVersion(2);
  EXPECT_EQ(model.observations(), 10u);
  EXPECT_EQ(model.data_version(), 1u);
}

TEST(PaModelTest, SnapshotForFiltersOneSelectivityColumn) {
  PaModel model;
  for (int i = 0; i < 6; ++i) model.Observe(1, 2, true);
  for (int i = 0; i < 6; ++i) model.Observe(2, 5, false);
  auto slice = model.SnapshotFor(2);
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice[0].level, 1u);
  EXPECT_EQ(slice[0].sel_bucket, 2u);
  EXPECT_EQ(slice[0].total, 6u);
}

TEST(PaModelTest, SelectivityBucketsAreMonotoneAndCapped) {
  EXPECT_EQ(SelectivityBucketOf(0), 0u);
  EXPECT_EQ(SelectivityBucketOf(1), 1u);
  size_t prev = 0;
  for (size_t rows = 1; rows < 1u << 20; rows *= 2) {
    const size_t bucket = SelectivityBucketOf(rows);
    EXPECT_GE(bucket, prev) << rows;
    EXPECT_LT(bucket, PaModel::kSelBuckets);
    prev = bucket;
  }
  EXPECT_EQ(SelectivityBucketOf(1u << 20), PaModel::kSelBuckets - 1);
}

// ---- StrategyPlanner ----

PlannerFeatures SomeFeatures() {
  PlannerFeatures f;
  f.retained_nodes = 12;
  f.num_mtns = 3;
  f.max_level = 3;
  f.base_nodes = 4;
  f.top_nodes = 1;
  f.min_keyword_rows = 9;
  f.sel_bucket = SelectivityBucketOf(9);
  return f;
}

TEST(StrategyPlannerTest, ColdBucketFallsBackToModelFedSbh) {
  StrategyPlannerOptions options;
  options.explore_eps = 0;
  StrategyPlanner planner(options);
  PlannerDecision decision = planner.Decide(SomeFeatures());
  EXPECT_EQ(decision.arm, PlannerArm::kSbhAdaptive);
  EXPECT_FALSE(decision.explored);
}

TEST(StrategyPlannerTest, ExploitsLowestMeanSqlWithMillisTieBreak) {
  StrategyPlannerOptions options;
  options.explore_eps = 0;
  StrategyPlanner planner(options);
  const PlannerFeatures f = SomeFeatures();
  for (PlannerArm arm : AllPlannerArms()) {
    planner.ObserveArm(f, arm, /*sql_queries=*/50, /*total_millis=*/5.0);
  }
  planner.ObserveArm(f, PlannerArm::kTopDown, 2, 9.0);
  EXPECT_EQ(planner.Decide(f).arm, PlannerArm::kTopDown);
  // Tie on mean SQL: BUWR matches TD's mean but is faster.
  planner.ObserveArm(f, PlannerArm::kBottomUpReuse, 2, 0.5);
  planner.ObserveArm(f, PlannerArm::kBottomUpReuse, 2, 0.5);
  planner.ObserveArm(f, PlannerArm::kTopDown, 2, 9.0);
  // TD mean sql = (50+2+2)/3 = 18; BUWR = (50+2+2)/3 = 18; BUWR millis win.
  EXPECT_EQ(planner.Decide(f).arm, PlannerArm::kBottomUpReuse);
}

TEST(StrategyPlannerTest, ForcedExplorationVisitsEveryArm) {
  StrategyPlannerOptions options;
  options.explore_eps = 1.0;
  options.seed = 99;
  StrategyPlanner planner(options);
  const PlannerFeatures f = SomeFeatures();
  std::set<PlannerArm> seen;
  for (int i = 0; i < 48; ++i) {
    PlannerDecision d = planner.Decide(f);
    EXPECT_TRUE(d.explored);
    seen.insert(d.arm);
    planner.Observe(d, 10, 1.0);
  }
  EXPECT_EQ(seen.size(), kNumPlannerArms);
  EXPECT_EQ(planner.explored(), 48u);
  EXPECT_EQ(planner.decisions(), 48u);
}

TEST(StrategyPlannerTest, FrozenPlannerExploitsOnly) {
  StrategyPlannerOptions options;
  options.explore_eps = 1.0;
  StrategyPlanner planner(options);
  const PlannerFeatures f = SomeFeatures();
  for (PlannerArm arm : AllPlannerArms()) planner.ObserveArm(f, arm, 50, 5.0);
  planner.ObserveArm(f, PlannerArm::kBottomUp, 1, 1.0);
  planner.Freeze();
  for (int i = 0; i < 16; ++i) {
    PlannerDecision d = planner.Decide(f);
    EXPECT_FALSE(d.explored);
    EXPECT_EQ(d.arm, PlannerArm::kBottomUp);
  }
  EXPECT_EQ(planner.explored(), 0u);
  // Observation and decay are also frozen out.
  planner.Observe(planner.Decide(f), 1000, 1000.0);
  EXPECT_EQ(planner.Decide(f).arm, PlannerArm::kBottomUp);
}

// ---- Cold-start safety: empty model == SBH @ 0.5, bit for bit ----

TEST(AdaptiveColdStartTest, ColdModelSbhMatchesFixedSbhExactly) {
  ToyFixture fx;
  PaModel cold;
  SbhOptions fixed;
  auto sbh = MakeScoreBased(fixed);
  SbhOptions fed;
  fed.pa_model = &cold;
  auto sbh_fed = MakeScoreBased(fed);
  const KeywordBinding bindings[] = {
      KeywordBinding({{"saffron", {fx.color, 1}},
                      {"scented", {fx.item, 1}},
                      {"candle", {fx.ptype, 1}}}),
      KeywordBinding({{"red", {fx.color, 1}}, {"candle", {fx.ptype, 1}}}),
  };
  for (const KeywordBinding& binding : bindings) {
    TraversalResult a = fx.Run(sbh.get(), binding);
    TraversalResult b = fx.Run(sbh_fed.get(), binding);
    // Same verdicts AND the same schedule: identical SQL counts, and no
    // sampling probes on either side.
    EXPECT_EQ(testutil::Summarize(a), testutil::Summarize(b));
    EXPECT_EQ(a.stats.sql_queries, b.stats.sql_queries);
    EXPECT_EQ(b.stats.pa_sample_sql, 0u);
  }
}

TEST(AdaptiveColdStartTest, ColdAdaptiveDebuggerMatchesStaticSbh) {
  ToyFixture fx;
  const char* queries[] = {"saffron candle", "red candle",
                           "saffron scented candle", "gray soap"};
  for (const char* query : queries) {
    DebuggerOptions static_options;
    static_options.strategy = TraversalKind::kScoreBased;
    NonAnswerDebugger fixed(fx.db.get(), fx.lattice.get(), fx.index.get(),
                            static_options);
    auto want = fixed.Debug(query);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    // Fresh owned state per query: the planner's cold fallback must be
    // model-fed SBH, which against an empty model is SBH @ 0.5.
    DebuggerOptions adaptive_options;
    adaptive_options.adaptive = true;
    adaptive_options.adaptive_options.planner.explore_eps = 0;
    NonAnswerDebugger adaptive(fx.db.get(), fx.lattice.get(), fx.index.get(),
                               adaptive_options);
    auto got = adaptive.Debug(query);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    EXPECT_EQ(got->ClassificationSignature(), want->ClassificationSignature())
        << query;
    ASSERT_EQ(got->interpretations.size(), want->interpretations.size());
    if (!got->interpretations.empty()) {
      // The first interpretation runs against a genuinely empty model (later
      // ones see its observations): its SQL count must match exactly.
      const TraversalStats& g = got->interpretations[0].traversal_stats;
      const TraversalStats& w = want->interpretations[0].traversal_stats;
      EXPECT_EQ(g.sql_queries, w.sql_queries) << query;
      EXPECT_EQ(g.planned_strategy, "SBH+pa") << query;
      EXPECT_EQ(g.planner_decisions, 1u);
    }
  }
}

// ---- Classification parity: planner picks never change a verdict ----

TEST(AdaptiveParityTest, AdaptiveVerdictsMatchFreshRunOfPlannedStrategy) {
  ToyFixture fx;
  AdaptiveState state([] {
    AdaptiveOptions o;
    o.planner.explore_eps = 0.3;  // force a mix of explored arms
    o.planner.seed = 7;
    return o;
  }());
  DebuggerOptions options;
  options.adaptive = true;
  options.shared_adaptive = &state;
  NonAnswerDebugger adaptive(fx.db.get(), fx.lattice.get(), fx.index.get(),
                             options);

  const char* queries[] = {"saffron candle", "red candle", "candle",
                           "saffron scented candle", "saffron candle",
                           "red candle", "candle"};
  std::map<std::string, PlannerArm> arm_by_name;
  for (PlannerArm arm : AllPlannerArms()) {
    arm_by_name[std::string(PlannerArmName(arm))] = arm;
  }
  size_t reruns = 0;
  for (const char* query : queries) {
    auto report = adaptive.Debug(query);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::string label =
        report->AggregateTraversalStats().planned_strategy;
    if (label.empty() || label == "mixed") continue;
    // Re-run the whole query with the planner's pick pinned on a fresh
    // debugger: the verdicts must be bit-identical.
    ASSERT_TRUE(arm_by_name.count(label)) << label;
    const PlannerArm arm = arm_by_name[label];
    DebuggerOptions pinned;
    pinned.strategy = ArmTraversalKind(arm);
    if (arm == PlannerArm::kSbhAdaptive) pinned.sbh.pa_model = &state.pa();
    NonAnswerDebugger fresh(fx.db.get(), fx.lattice.get(), fx.index.get(),
                            pinned);
    auto want = fresh.Debug(query);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(report->ClassificationSignature(),
              want->ClassificationSignature())
        << query << " planned as " << label;
    ++reruns;
  }
  EXPECT_GT(reruns, 0u);
  EXPECT_GT(state.planner().decisions(), 0u);
  EXPECT_GT(state.pa().observations(), 0u);
}

// ---- Data-version plumbing: live epochs reach the model ----

TEST(AdaptiveDriftTest, EpochBumpChangesDataVersionAndDecaysModel) {
  ToyFixture fx;
  const uint64_t v1 = DataVersionOf(*fx.db);
  EXPECT_NE(v1, 0u);
  EXPECT_EQ(v1, DataVersionOf(*fx.db));  // stable while data is unchanged
  fx.db->BumpEpoch();
  const uint64_t v2 = DataVersionOf(*fx.db);
  EXPECT_NE(v1, v2);

  AdaptiveState state;
  DebuggerOptions options;
  options.adaptive = true;
  options.adaptive_options.planner.explore_eps = 0;
  options.shared_adaptive = &state;
  NonAnswerDebugger debugger(fx.db.get(), fx.lattice.get(), fx.index.get(),
                             options);
  auto report = debugger.Debug("saffron candle");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(state.pa().data_version(), v2);
  const size_t warm = state.pa().observations();
  ASSERT_GT(warm, 0u);

  // A mutation epoch decays the learned counts on the next query.
  fx.db->BumpEpoch();
  auto again = debugger.Debug("red candle");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(state.pa().data_version(), DataVersionOf(*fx.db));
  EXPECT_NE(state.pa().data_version(), v2);
}

}  // namespace
}  // namespace kwsdbg
