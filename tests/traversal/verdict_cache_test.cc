// Session verdict cache: verdicts keyed by (canonical label, binding
// signature, database epoch) persist across traversals, so a repeated query
// re-derives every classification without SQL until the database changes.
#include "traversal/verdict_cache.h"

#include <gtest/gtest.h>

#include "debugger/non_answer_debugger.h"
#include "test_util.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

using testutil::Summarize;
using testutil::ToyFixture;

TEST(VerdictCacheTest, LookupKeysOnAllThreeComponents) {
  VerdictCache cache(/*capacity=*/16);
  EXPECT_EQ(cache.Lookup("T0(T1)", "sig", 0), std::nullopt);
  cache.Insert("T0(T1)", "sig", 0, true);
  EXPECT_EQ(cache.Lookup("T0(T1)", "sig", 0), true);
  // Any differing component is a distinct verdict.
  EXPECT_EQ(cache.Lookup("T0(T2)", "sig", 0), std::nullopt);
  EXPECT_EQ(cache.Lookup("T0(T1)", "other", 0), std::nullopt);
  EXPECT_EQ(cache.Lookup("T0(T1)", "sig", 1), std::nullopt);
  cache.Insert("T0(T1)", "sig", 1, false);
  EXPECT_EQ(cache.Lookup("T0(T1)", "sig", 1), false);
  VerdictCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 2u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

class VerdictCacheTraversalTest : public testing::Test {
 protected:
  VerdictCacheTraversalTest()
      : binding_({{"saffron", {fx_.color, 1}},
                  {"scented", {fx_.item, 1}},
                  {"candle", {fx_.ptype, 1}}}),
        pl_(PrunedLattice::Build(*fx_.lattice, binding_)) {}

  TraversalResult RunWithCache(VerdictCache* cache) {
    auto strategy = MakeStrategy(TraversalKind::kBottomUpWithReuse);
    Executor executor(fx_.db.get());
    QueryEvaluator evaluator(fx_.db.get(), &executor, &pl_, fx_.index.get(),
                             EvalOptions{}, cache);
    auto result = strategy->Run(pl_, &evaluator);
    KWSDBG_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  ToyFixture fx_;
  KeywordBinding binding_;
  PrunedLattice pl_;
};

TEST_F(VerdictCacheTraversalTest, SecondTraversalNeedsNoSql) {
  VerdictCache cache;
  TraversalResult cold = RunWithCache(&cache);
  ASSERT_GT(cold.stats.sql_queries, 0u);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.cache_misses, cold.stats.sql_queries);

  // A fresh evaluator over the same lattice + binding: every non-base
  // verdict is already cached, so no SQL runs and nothing changes.
  TraversalResult warm = RunWithCache(&cache);
  EXPECT_EQ(warm.stats.sql_queries, 0u);
  EXPECT_EQ(warm.stats.cache_hits, cold.stats.cache_misses);
  EXPECT_EQ(Summarize(warm), Summarize(cold));

  // And the cache never changes classifications vs. running without one.
  TraversalResult uncached = RunWithCache(nullptr);
  EXPECT_EQ(Summarize(uncached), Summarize(cold));
  EXPECT_EQ(uncached.stats.cache_hits + uncached.stats.cache_misses, 0u);
}

TEST_F(VerdictCacheTraversalTest, EpochBumpInvalidatesVerdicts) {
  VerdictCache cache;
  TraversalResult cold = RunWithCache(&cache);
  ASSERT_GT(cold.stats.sql_queries, 0u);

  // Simulate a database mutation: stale verdicts must not be served.
  fx_.db->BumpEpoch();
  TraversalResult after = RunWithCache(&cache);
  EXPECT_EQ(after.stats.cache_hits, 0u);
  EXPECT_EQ(after.stats.sql_queries, cold.stats.sql_queries);
  EXPECT_EQ(Summarize(after), Summarize(cold));
}

TEST(VerdictCacheDebuggerTest, CachePersistsAcrossDebugCalls) {
  ToyFixture fx;
  NonAnswerDebugger debugger(fx.db.get(), fx.lattice.get(), fx.index.get());
  ASSERT_NE(debugger.verdict_cache(), nullptr);

  auto first = debugger.Debug("saffron scented candle");
  ASSERT_TRUE(first.ok());
  TraversalStats cold = first->AggregateTraversalStats();
  ASSERT_GT(cold.sql_queries, 0u);

  auto second = debugger.Debug("saffron scented candle");
  ASSERT_TRUE(second.ok());
  TraversalStats warm = second->AggregateTraversalStats();

  EXPECT_EQ(warm.sql_queries, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(second->TotalAnswers(), first->TotalAnswers());
  EXPECT_EQ(second->TotalNonAnswers(), first->TotalNonAnswers());

  // Disabling the cache restores stateless sessions.
  DebuggerOptions no_cache;
  no_cache.verdict_cache_capacity = 0;
  NonAnswerDebugger stateless(fx.db.get(), fx.lattice.get(), fx.index.get(),
                              no_cache);
  EXPECT_EQ(stateless.verdict_cache(), nullptr);
  auto a = stateless.Debug("saffron scented candle");
  auto b = stateless.Debug("saffron scented candle");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->AggregateTraversalStats().sql_queries,
            a->AggregateTraversalStats().sql_queries);
}

}  // namespace
}  // namespace kwsdbg
