#include "traversal/evaluator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class EvaluatorTest : public testing::Test {
 protected:
  EvaluatorTest()
      : pl_(PrunedLattice::Build(
            *fx_.lattice,
            KeywordBinding({{"saffron", {fx_.color, 1}},
                            {"scented", {fx_.item, 1}},
                            {"candle", {fx_.ptype, 1}}}))),
        executor_(fx_.db.get()) {}

  NodeId NodeAtLevel(size_t level, size_t index = 0) const {
    return pl_.RetainedAtLevel(level)[index];
  }

  ToyFixture fx_;
  PrunedLattice pl_;
  Executor executor_;
};

TEST_F(EvaluatorTest, BaseBoundNodesResolveViaIndexWithoutSql) {
  QueryEvaluator evaluator(fx_.db.get(), &executor_, &pl_, fx_.index.get());
  for (NodeId n : pl_.RetainedAtLevel(1)) {
    auto alive = evaluator.IsAlive(n);
    ASSERT_TRUE(alive.ok());
    EXPECT_TRUE(*alive);  // all three keywords occur; tables are non-empty
  }
  EXPECT_EQ(evaluator.sql_executed(), 0u);
  EXPECT_EQ(executor_.stats().queries_executed, 0u);
}

TEST_F(EvaluatorTest, IndexShortcutAgreesWithSql) {
  EvalOptions no_shortcut;
  no_shortcut.base_nodes_via_index = false;
  QueryEvaluator with(fx_.db.get(), &executor_, &pl_, fx_.index.get());
  QueryEvaluator without(fx_.db.get(), &executor_, &pl_, fx_.index.get(),
                         no_shortcut);
  for (NodeId n : pl_.RetainedAtLevel(1)) {
    auto a = with.IsAlive(n);
    auto b = without.IsAlive(n);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
  EXPECT_EQ(with.sql_executed(), 0u);
  EXPECT_EQ(without.sql_executed(), pl_.RetainedAtLevel(1).size());
}

TEST_F(EvaluatorTest, HigherNodesAlwaysUseSql) {
  QueryEvaluator evaluator(fx_.db.get(), &executor_, &pl_, fx_.index.get());
  auto alive = evaluator.IsAlive(NodeAtLevel(2));
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(evaluator.sql_executed(), 1u);
  EXPECT_GT(evaluator.sql_millis(), 0.0);
}

TEST_F(EvaluatorTest, NoMemoizationByDesign) {
  // The no-reuse strategies depend on the evaluator re-executing.
  QueryEvaluator evaluator(fx_.db.get(), &executor_, &pl_, fx_.index.get());
  NodeId n = NodeAtLevel(2);
  ASSERT_TRUE(evaluator.IsAlive(n).ok());
  ASSERT_TRUE(evaluator.IsAlive(n).ok());
  EXPECT_EQ(evaluator.sql_executed(), 2u);
}

TEST_F(EvaluatorTest, FreeBaseNodeDeadOnEmptyTable) {
  // A schema with an empty table: the free copy of it is dead.
  Database db;
  auto table = db.CreateTable(
      "Empty", Schema({{"id", DataType::kInt64}, {"t", DataType::kString}}));
  ASSERT_TRUE(table.ok());
  SchemaGraph schema;
  ASSERT_TRUE(schema.AddRelation("Empty", true).ok());
  LatticeConfig config;
  config.max_joins = 0;
  config.num_keyword_copies = 1;
  auto lattice = LatticeGenerator::Generate(schema, config);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(db);
  KeywordBinding binding(std::vector<KeywordAssignment>{});
  PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
  Executor executor(&db);
  QueryEvaluator evaluator(&db, &executor, &pl, &index);
  NodeId free_node = (*lattice)->FindTree(JoinTree::Single({0, 0}));
  ASSERT_NE(free_node, kInvalidNode);
  auto alive = evaluator.IsAlive(free_node);
  ASSERT_TRUE(alive.ok());
  EXPECT_FALSE(*alive);
  EXPECT_EQ(evaluator.sql_executed(), 0u);
}

TEST_F(EvaluatorTest, MissingTableSurfacesError) {
  // The lattice/schema mention a table the serving database lacks: the
  // evaluator must surface the error, not mis-classify.
  Database empty_db;
  Executor executor(&empty_db);
  QueryEvaluator evaluator(&empty_db, &executor, &pl_, fx_.index.get());
  auto result = evaluator.IsAlive(NodeAtLevel(2));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace kwsdbg
