// Parallel frontier evaluation must be an execution detail: for every
// strategy, batching a level's unknown nodes over workers and folding the
// verdicts in serially yields classifications identical to the serial run —
// nodes of one level are never ancestor/descendant, so R1/R2 cannot couple
// them. For the four deterministic sweeps even the SQL set is unchanged.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "datasets/dblife.h"
#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "lattice/lattice_generator.h"
#include "sql/executor.h"
#include "test_util.h"
#include "text/inverted_index.h"
#include "traversal/strategies.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {
namespace {

using testutil::Summarize;

/// Workload seed: overridable for reproducing a failure against a specific
/// dataset instance, and always printed so CI logs identify the instance.
uint64_t AgreementSeed() {
  static const uint64_t seed = [] {
    const char* v = std::getenv("KWSDBG_AGREEMENT_SEED");
    const uint64_t s = v == nullptr ? 21 : static_cast<uint64_t>(std::atoll(v));
    std::printf("dataset seed: %llu (override with KWSDBG_AGREEMENT_SEED)\n",
                static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

TraversalResult RunKind(const testutil::ToyFixture& fx, const PrunedLattice& pl,
                    TraversalKind kind, ParallelOptions parallel,
                    VerdictCache* cache = nullptr) {
  auto strategy = MakeStrategy(kind, SbhOptions{}, parallel);
  Executor executor(fx.db.get());
  QueryEvaluator evaluator(fx.db.get(), &executor, &pl, fx.index.get(),
                           EvalOptions{}, cache);
  auto result = strategy->Run(pl, &evaluator);
  KWSDBG_CHECK(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(ParallelAgreementTest, AllStrategiesMatchSerialOnToyDb) {
  testutil::ToyFixture fx;
  const KeywordBinding bindings[] = {
      KeywordBinding({{"saffron", {fx.color, 1}},
                      {"scented", {fx.item, 1}},
                      {"candle", {fx.ptype, 1}}}),
      KeywordBinding({{"red", {fx.color, 1}}, {"candle", {fx.ptype, 1}}}),
      KeywordBinding({{"vanilla", {fx.item, 1}}, {"oil", {fx.ptype, 1}}}),
  };
  for (const KeywordBinding& binding : bindings) {
    PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
    if (pl.mtns().empty()) continue;
    for (TraversalKind kind : AllTraversalKinds()) {
      TraversalResult serial = RunKind(fx, pl, kind, ParallelOptions{});
      ParallelOptions four;
      four.num_threads = 4;
      TraversalResult parallel = RunKind(fx, pl, kind, four);
      EXPECT_EQ(Summarize(parallel), Summarize(serial))
          << "strategy " << MakeStrategy(kind)->name() << ", binding "
          << binding.ToString(fx.schema);
      if (kind != TraversalKind::kScoreBased) {
        // Deterministic sweeps issue exactly the serial SQL set; SBH may
        // speculate ahead and issue extra queries.
        EXPECT_EQ(parallel.stats.sql_queries, serial.stats.sql_queries)
            << MakeStrategy(kind)->name();
      }
    }
  }
}

// SBH's speculation bookkeeping (the batch-position vector that replaced a
// per-round hash map) must not change a single verdict: leftover prefetched
// entries are consumed across later rounds, and a stale entry for a node the
// inference rules already classified must never be re-applied. Sweep the
// speculation depth (2 * num_threads) so batches of several sizes, including
// ones larger than the surviving frontier, all reproduce the serial run.
TEST(ParallelAgreementTest, SbhBatchBookkeepingPreservesClassification) {
  testutil::ToyFixture fx;
  const KeywordBinding bindings[] = {
      KeywordBinding({{"saffron", {fx.color, 1}},
                      {"scented", {fx.item, 1}},
                      {"candle", {fx.ptype, 1}}}),
      KeywordBinding({{"red", {fx.color, 1}}, {"candle", {fx.ptype, 1}}}),
  };
  for (const KeywordBinding& binding : bindings) {
    PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
    if (pl.mtns().empty()) continue;
    const TraversalResult serial =
        RunKind(fx, pl, TraversalKind::kScoreBased, ParallelOptions{});
    for (size_t threads : {2u, 3u, 4u, 8u}) {
      ParallelOptions parallel;
      parallel.num_threads = threads;
      const TraversalResult speculated =
          RunKind(fx, pl, TraversalKind::kScoreBased, parallel);
      EXPECT_EQ(Summarize(speculated), Summarize(serial))
          << "num_threads " << threads << ", binding "
          << binding.ToString(fx.schema);
    }
  }
}

TEST(ParallelAgreementTest, SharedCacheMakesParallelRerunsSqlFree) {
  testutil::ToyFixture fx;
  KeywordBinding binding({{"saffron", {fx.color, 1}},
                          {"scented", {fx.item, 1}},
                          {"candle", {fx.ptype, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
  ASSERT_FALSE(pl.mtns().empty());
  ParallelOptions four;
  four.num_threads = 4;
  for (TraversalKind kind : AllTraversalKinds()) {
    VerdictCache cache;
    TraversalResult cold = RunKind(fx, pl, kind, four, &cache);
    TraversalResult warm = RunKind(fx, pl, kind, four, &cache);
    EXPECT_EQ(warm.stats.sql_queries, 0u) << MakeStrategy(kind)->name();
    EXPECT_GT(warm.stats.cache_hits, 0u) << MakeStrategy(kind)->name();
    EXPECT_EQ(Summarize(warm), Summarize(cold)) << MakeStrategy(kind)->name();
  }
}

TEST(ParallelAgreementTest, MatchesSerialOnDblifeWorkload) {
  DblifeConfig config;
  config.seed = AgreementSeed();
  config.num_persons = 40;
  config.num_publications = 80;
  config.num_conferences = 8;
  config.num_organizations = 10;
  config.num_topics = 10;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 4;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  KeywordBinder binder(&ds->schema, &index, 2, /*max_interpretations=*/3);

  ParallelOptions four;
  four.num_threads = 4;
  bool saw_parallel_round = false;
  for (const char* q : {"widom trio", "probabilistic data", "gray sigmod"}) {
    BindingResult binding_result = binder.Bind(q);
    for (const KeywordBinding& binding : binding_result.interpretations) {
      PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
      if (pl.mtns().empty()) continue;
      for (TraversalKind kind : AllTraversalKinds()) {
        auto serial_strategy = MakeStrategy(kind);
        Executor se(ds->db.get());
        QueryEvaluator sev(ds->db.get(), &se, &pl, &index);
        auto serial = serial_strategy->Run(pl, &sev);
        ASSERT_TRUE(serial.ok());

        auto parallel_strategy = MakeStrategy(kind, SbhOptions{}, four);
        Executor pe(ds->db.get());
        QueryEvaluator pev(ds->db.get(), &pe, &pl, &index);
        auto parallel = parallel_strategy->Run(pl, &pev);
        ASSERT_TRUE(parallel.ok());

        EXPECT_EQ(Summarize(*parallel), Summarize(*serial))
            << "query '" << q << "', strategy " << parallel_strategy->name()
            << ", binding " << binding.ToString(ds->schema);
        if (parallel->stats.parallel_rounds > 0) {
          saw_parallel_round = true;
          EXPECT_GT(parallel->stats.max_batch, 1u);
        }
      }
    }
  }
  // The workload is large enough that at least one frontier actually fanned
  // out; otherwise this test would silently degrade to serial-vs-serial.
  EXPECT_TRUE(saw_parallel_round);
}

}  // namespace
}  // namespace kwsdbg
