// Property test: all five traversal strategies and the RE oracle produce
// identical answer/non-answer classifications and identical MPAN sets, for
// every interpretation of randomized keyword queries over randomized small
// DBLife instances.
#include <gtest/gtest.h>

#include "baselines/return_everything.h"
#include "common/rng.h"
#include "datasets/dblife.h"
#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "lattice/lattice_generator.h"
#include "sql/executor.h"
#include "test_util.h"
#include "text/inverted_index.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

class StrategyAgreementTest : public testing::TestWithParam<uint64_t> {};

TEST_P(StrategyAgreementTest, AllStrategiesMatchOracleOnDblife) {
  DblifeConfig config;
  config.seed = GetParam();
  config.num_persons = 60;
  config.num_publications = 120;
  config.num_conferences = 10;
  config.num_organizations = 15;
  config.num_topics = 12;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 4;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  KeywordBinder binder(&ds->schema, &index, 2, /*max_interpretations=*/4);

  const char* queries[] = {"widom trio",        "gray sigmod",
                           "probabilistic data", "histograms",
                           "washington data",    "dewitt tutorial"};
  auto oracle = MakeReturnEverything();
  for (const char* q : queries) {
    BindingResult binding_result = binder.Bind(q);
    for (const KeywordBinding& binding : binding_result.interpretations) {
      PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
      if (pl.mtns().empty()) continue;

      Executor oracle_exec(ds->db.get());
      QueryEvaluator oracle_eval(ds->db.get(), &oracle_exec, &pl, &index);
      auto expected = oracle->Run(pl, &oracle_eval);
      ASSERT_TRUE(expected.ok());

      for (TraversalKind kind : AllTraversalKinds()) {
        auto strategy = MakeStrategy(kind);
        Executor executor(ds->db.get());
        QueryEvaluator evaluator(ds->db.get(), &executor, &pl, &index);
        auto got = strategy->Run(pl, &evaluator);
        ASSERT_TRUE(got.ok()) << strategy->name();
        EXPECT_EQ(testutil::Summarize(*got), testutil::Summarize(*expected))
            << "query '" << q << "', strategy " << strategy->name()
            << ", binding " << binding.ToString(ds->schema);
        // The strategies that share evaluations across MTNs never execute
        // more SQL than the evaluate-everything oracle. BU/TD (no reuse)
        // legitimately can: they re-evaluate shared descendants per MTN —
        // exactly the redundancy Fig. 11 quantifies.
        if (kind == TraversalKind::kBottomUpWithReuse ||
            kind == TraversalKind::kTopDownWithReuse ||
            kind == TraversalKind::kScoreBased) {
          EXPECT_LE(got->stats.sql_queries, expected->stats.sql_queries)
              << strategy->name();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAgreementTest,
                         testing::Values(7, 21, 1001));

}  // namespace
}  // namespace kwsdbg
