// Failure injection: when the serving database disagrees with the offline
// artifacts (a table dropped between reindex and query time), every strategy
// must surface the error as a Status rather than mis-classifying nodes.
#include <gtest/gtest.h>

#include "baselines/return_everything.h"
#include "test_util.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class FailureInjectionTest : public testing::Test {
 protected:
  FailureInjectionTest()
      : pl_(PrunedLattice::Build(
            *fx_.lattice,
            KeywordBinding({{"saffron", {fx_.color, 1}},
                            {"scented", {fx_.item, 1}},
                            {"candle", {fx_.ptype, 1}}}))) {
    // A "serving" database missing the Item table entirely.
    auto c = broken_db_.CreateTable(
        "Color", Schema({{"id", DataType::kInt64},
                         {"color", DataType::kString},
                         {"synonyms", DataType::kString}}));
    auto p = broken_db_.CreateTable(
        "ProductType", Schema({{"id", DataType::kInt64},
                               {"product_type", DataType::kString}}));
    auto a = broken_db_.CreateTable(
        "Attribute", Schema({{"id", DataType::kInt64},
                             {"property", DataType::kString},
                             {"value", DataType::kString}}));
    KWSDBG_CHECK(c.ok() && p.ok() && a.ok());
  }

  ToyFixture fx_;
  PrunedLattice pl_;
  Database broken_db_;
};

TEST_F(FailureInjectionTest, EveryStrategyPropagatesExecutorErrors) {
  for (TraversalKind kind : AllTraversalKinds()) {
    auto strategy = MakeStrategy(kind);
    Executor executor(&broken_db_);
    QueryEvaluator evaluator(&broken_db_, &executor, &pl_, fx_.index.get());
    auto result = strategy->Run(pl_, &evaluator);
    ASSERT_FALSE(result.ok()) << strategy->name();
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound)
        << strategy->name();
  }
}

TEST_F(FailureInjectionTest, ReturnEverythingPropagatesToo) {
  auto re = MakeReturnEverything();
  Executor executor(&broken_db_);
  QueryEvaluator evaluator(&broken_db_, &executor, &pl_, fx_.index.get());
  EXPECT_FALSE(re->Run(pl_, &evaluator).ok());
}

TEST_F(FailureInjectionTest, HealthyRunAfterFailedRunIsClean) {
  // A failed run against the broken database must not poison a subsequent
  // run against the healthy one (fresh executor/evaluator per run).
  {
    auto strategy = MakeStrategy(TraversalKind::kScoreBased);
    Executor executor(&broken_db_);
    QueryEvaluator evaluator(&broken_db_, &executor, &pl_, fx_.index.get());
    ASSERT_FALSE(strategy->Run(pl_, &evaluator).ok());
  }
  auto strategy = MakeStrategy(TraversalKind::kScoreBased);
  Executor executor(fx_.db.get());
  QueryEvaluator evaluator(fx_.db.get(), &executor, &pl_, fx_.index.get());
  auto result = strategy->Run(pl_, &evaluator);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->outcomes[0].alive);
  EXPECT_EQ(result->outcomes[0].mpans.size(), 2u);
}

}  // namespace
}  // namespace kwsdbg
