#include "traversal/node_status.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class NodeStatusTest : public testing::Test {
 protected:
  NodeStatusTest()
      : pl_(PrunedLattice::Build(
            *fx_.lattice,
            KeywordBinding({{"red", {fx_.color, 1}},
                            {"candle", {fx_.ptype, 1}}}))) {}

  ToyFixture fx_;
  PrunedLattice pl_;  // retained: P1-I0-C1 with 5 descendants
};

TEST_F(NodeStatusTest, InitiallyPossiblyAlive) {
  NodeStatusMap status(fx_.lattice->num_nodes());
  for (NodeId n : pl_.retained()) {
    EXPECT_EQ(status.Get(n), NodeStatus::kPossiblyAlive);
    EXPECT_FALSE(status.IsKnown(n));
    EXPECT_FALSE(status.IsAlive(n));
    EXPECT_FALSE(status.IsDead(n));
  }
  EXPECT_EQ(status.num_unknown(), fx_.lattice->num_nodes());
}

TEST_F(NodeStatusTest, Rule1MarksAllDescendantsAlive) {
  NodeStatusMap status(fx_.lattice->num_nodes());
  NodeId mtn = pl_.mtns()[0];
  size_t newly = status.MarkAliveWithDescendants(mtn, pl_);
  EXPECT_EQ(newly, 5u);
  EXPECT_TRUE(status.IsAlive(mtn));
  for (NodeId d : pl_.RetainedDescendants(mtn)) {
    EXPECT_TRUE(status.IsAlive(d));
  }
}

TEST_F(NodeStatusTest, Rule2MarksAllAncestorsDead) {
  NodeStatusMap status(fx_.lattice->num_nodes());
  // Kill a base node: both level-2 parents and the MTN die.
  NodeId i0 = fx_.lattice->FindTree(JoinTree::Single({fx_.item, 0}));
  ASSERT_NE(i0, kInvalidNode);
  size_t newly = status.MarkDeadWithAncestors(i0, pl_);
  EXPECT_EQ(newly, 3u);
  EXPECT_TRUE(status.IsDead(i0));
  EXPECT_TRUE(status.IsDead(pl_.mtns()[0]));
}

TEST_F(NodeStatusTest, PropagationDoesNotOverwriteKnown) {
  NodeStatusMap status(fx_.lattice->num_nodes());
  NodeId mtn = pl_.mtns()[0];
  NodeId i0 = fx_.lattice->FindTree(JoinTree::Single({fx_.item, 0}));
  status.Set(i0, NodeStatus::kAlive);
  // R1 from the MTN: i0 already known, so not counted as newly classified.
  size_t newly = status.MarkAliveWithDescendants(mtn, pl_);
  EXPECT_EQ(newly, 4u);
  EXPECT_TRUE(status.IsAlive(i0));
}

TEST_F(NodeStatusTest, NumUnknownTracksClassification) {
  NodeStatusMap status(fx_.lattice->num_nodes());
  const size_t total = status.num_unknown();
  status.Set(pl_.mtns()[0], NodeStatus::kDead);
  EXPECT_EQ(status.num_unknown(), total - 1);
}

}  // namespace
}  // namespace kwsdbg
