#include "traversal/pa_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/return_everything.h"
#include "test_util.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class PaEstimatorTest : public testing::Test {
 protected:
  PaEstimatorTest()
      : pl_(PrunedLattice::Build(
            *fx_.lattice,
            KeywordBinding({{"saffron", {fx_.color, 1}},
                            {"scented", {fx_.item, 1}},
                            {"candle", {fx_.ptype, 1}}}))),
        executor_(fx_.db.get()),
        evaluator_(fx_.db.get(), &executor_, &pl_, fx_.index.get()) {}

  ToyFixture fx_;
  PrunedLattice pl_;
  Executor executor_;
  QueryEvaluator evaluator_;
};

TEST_F(PaEstimatorTest, EstimateReflectsSampledAliveness) {
  // q1 sub-lattice: {MTN dead, I1C1 dead, P1I1 alive, 3 alive bases} —
  // sampling everything must yield 4/6 clamped into [0.1, 0.9].
  PaEstimatorOptions options;
  options.sample_size = 100;  // capped at |retained| = 6
  auto estimate = EstimateAliveProbability(pl_, &evaluator_, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->sampled, 6u);
  EXPECT_EQ(estimate->alive, 4u);
  EXPECT_NEAR(estimate->alive_probability, 4.0 / 6.0, 1e-9);
}

TEST_F(PaEstimatorTest, ClampingAppliesAtTheExtremes) {
  // "red candle": the MTN P1-I0-C1 is alive; everything sampled is alive.
  PrunedLattice alive_pl = PrunedLattice::Build(
      *fx_.lattice,
      KeywordBinding({{"red", {fx_.color, 1}}, {"candle", {fx_.ptype, 1}}}));
  QueryEvaluator evaluator(fx_.db.get(), &executor_, &alive_pl,
                           fx_.index.get());
  PaEstimatorOptions options;
  options.sample_size = 100;
  auto estimate = EstimateAliveProbability(alive_pl, &evaluator, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->alive, estimate->sampled);
  EXPECT_DOUBLE_EQ(estimate->alive_probability, 0.9);  // clamped from 1.0
}

TEST_F(PaEstimatorTest, DeterministicForSeed) {
  PaEstimatorOptions options;
  options.sample_size = 3;
  auto a = EstimateAliveProbability(pl_, &evaluator_, options);
  auto b = EstimateAliveProbability(pl_, &evaluator_, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->alive, b->alive);
  EXPECT_EQ(a->alive_probability, b->alive_probability);
}

TEST_F(PaEstimatorTest, StatusMapAbsorbsSamples) {
  NodeStatusMap status(fx_.lattice->num_nodes());
  PaEstimatorOptions options;
  options.sample_size = 100;
  auto estimate =
      EstimateAliveProbability(pl_, &evaluator_, options, &status);
  ASSERT_TRUE(estimate.ok());
  // Everything retained is now classified (the sample covered it all, plus
  // R1/R2 propagation), and inference made some evaluations free.
  for (NodeId n : pl_.retained()) {
    EXPECT_TRUE(status.IsKnown(n));
  }
  EXPECT_LE(estimate->sql_executed, estimate->sampled);
}

TEST_F(PaEstimatorTest, EmptySearchSpaceReturnsPrior) {
  // Copy 3 does not exist in a 2-copy lattice, so nothing survives Phase 1
  // and the search space is empty.
  PrunedLattice no_mtn = PrunedLattice::Build(
      *fx_.lattice, KeywordBinding({{"red", {fx_.color, 3}}}));
  ASSERT_TRUE(no_mtn.retained().empty());
  QueryEvaluator evaluator(fx_.db.get(), &executor_, &no_mtn,
                           fx_.index.get());
  auto estimate = EstimateAliveProbability(no_mtn, &evaluator);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->sampled, 0u);
  EXPECT_DOUBLE_EQ(estimate->alive_probability, 0.5);
}

TEST_F(PaEstimatorTest, ZeroSampleSizeKeepsPriorWithoutNan) {
  // Regression: sample_size = 0 used to divide 0/0 and return NaN, which
  // poisoned every downstream gain comparison. An empty sample must keep the
  // 0.5 prior.
  PaEstimatorOptions options;
  options.sample_size = 0;
  auto estimate = EstimateAliveProbability(pl_, &evaluator_, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->sampled, 0u);
  EXPECT_EQ(estimate->sql_executed, 0u);
  EXPECT_FALSE(std::isnan(estimate->alive_probability));
  EXPECT_DOUBLE_EQ(estimate->alive_probability, 0.5);
}

TEST_F(PaEstimatorTest, SbhWithEstimationStillCorrect) {
  auto oracle = MakeReturnEverything();
  Executor oracle_exec(fx_.db.get());
  QueryEvaluator oracle_eval(fx_.db.get(), &oracle_exec, &pl_,
                             fx_.index.get());
  auto expected = oracle->Run(pl_, &oracle_eval);
  ASSERT_TRUE(expected.ok());

  SbhOptions options;
  options.estimate_pa = true;
  options.estimator_sample_size = 3;
  auto sbh = MakeScoreBased(options);
  Executor executor(fx_.db.get());
  QueryEvaluator evaluator(fx_.db.get(), &executor, &pl_, fx_.index.get());
  auto got = sbh->Run(pl_, &evaluator);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(testutil::Summarize(*got), testutil::Summarize(*expected));
}

}  // namespace
}  // namespace kwsdbg
