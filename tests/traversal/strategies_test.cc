// Strategy behaviour on the paper's Example 1: q1 and q2 are non-answers
// whose MPANs are exactly the ones the paper lists, under every strategy.
#include <gtest/gtest.h>

#include "baselines/return_everything.h"
#include "test_util.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class StrategiesTest : public testing::Test {
 protected:
  ToyFixture fx_;

  KeywordBinding Q1Binding() {  // saffron as a color
    return KeywordBinding({{"saffron", {fx_.color, 1}},
                           {"scented", {fx_.item, 1}},
                           {"candle", {fx_.ptype, 1}}});
  }
  KeywordBinding Q2Binding() {  // saffron as a scent (Attribute)
    return KeywordBinding({{"saffron", {fx_.attr, 1}},
                           {"scented", {fx_.item, 1}},
                           {"candle", {fx_.ptype, 1}}});
  }
};

TEST_F(StrategiesTest, Q1NonAnswerMpansMatchPaperUnderEveryStrategy) {
  for (TraversalKind kind : AllTraversalKinds()) {
    auto strategy = MakeStrategy(kind);
    TraversalResult r = fx_.Run(strategy.get(), Q1Binding());
    ASSERT_EQ(r.outcomes.size(), 1u) << strategy->name();
    EXPECT_FALSE(r.outcomes[0].alive) << strategy->name();
    // Paper: MPANs of q1 are P_candle ⋈ I_scented and C_saffron.
    std::set<std::string> names = fx_.MpanNames(r.outcomes[0]);
    ASSERT_EQ(names.size(), 2u) << strategy->name();
    bool has_pi = false, has_c = false;
    for (const std::string& n : names) {
      if (n == "Color[1]") has_c = true;
      if (n.find("ProductType[1]") != std::string::npos &&
          n.find("Item[1]") != std::string::npos) {
        has_pi = true;
      }
    }
    EXPECT_TRUE(has_pi) << strategy->name();
    EXPECT_TRUE(has_c) << strategy->name();
  }
}

TEST_F(StrategiesTest, Q2NonAnswerMpansMatchPaperUnderEveryStrategy) {
  for (TraversalKind kind : AllTraversalKinds()) {
    auto strategy = MakeStrategy(kind);
    TraversalResult r = fx_.Run(strategy.get(), Q2Binding());
    ASSERT_EQ(r.outcomes.size(), 1u);
    EXPECT_FALSE(r.outcomes[0].alive);
    // Paper: MPANs of q2 are P_candle ⋈ I_scented and I_scented ⋈ A_saffron.
    std::set<std::string> names = fx_.MpanNames(r.outcomes[0]);
    ASSERT_EQ(names.size(), 2u) << strategy->name();
    bool has_pi = false, has_ia = false;
    for (const std::string& n : names) {
      if (n.find("ProductType[1]") != std::string::npos &&
          n.find("Item[1]") != std::string::npos) {
        has_pi = true;
      }
      if (n.find("Attribute[1]") != std::string::npos &&
          n.find("Item[1]") != std::string::npos) {
        has_ia = true;
      }
    }
    EXPECT_TRUE(has_pi) << strategy->name();
    EXPECT_TRUE(has_ia) << strategy->name();
  }
}

TEST_F(StrategiesTest, AliveMtnHasNoMpans) {
  // "red candle" with red->Color: alive (items 3, 4 are red candles).
  KeywordBinding binding(
      {{"red", {fx_.color, 1}}, {"candle", {fx_.ptype, 1}}});
  for (TraversalKind kind : AllTraversalKinds()) {
    auto strategy = MakeStrategy(kind);
    TraversalResult r = fx_.Run(strategy.get(), binding);
    ASSERT_EQ(r.outcomes.size(), 1u);
    EXPECT_TRUE(r.outcomes[0].alive) << strategy->name();
    EXPECT_TRUE(r.outcomes[0].mpans.empty()) << strategy->name();
  }
}

TEST_F(StrategiesTest, TopDownCheaperWhenMtnAlive) {
  KeywordBinding binding(
      {{"red", {fx_.color, 1}}, {"candle", {fx_.ptype, 1}}});
  auto td = MakeTopDown();
  auto bu = MakeBottomUp();
  TraversalResult td_r = fx_.Run(td.get(), binding);
  TraversalResult bu_r = fx_.Run(bu.get(), binding);
  // TD evaluates the alive MTN once and infers everything below (R1); BU
  // climbs the whole sub-lattice.
  EXPECT_EQ(td_r.stats.sql_queries, 1u);
  EXPECT_GT(bu_r.stats.sql_queries, td_r.stats.sql_queries);
}

TEST_F(StrategiesTest, ReuseVariantsNeverExecuteMore) {
  for (const KeywordBinding& binding :
       {Q1Binding(), Q2Binding(),
        KeywordBinding({{"red", {fx_.color, 1}}, {"candle", {fx_.ptype, 1}}}),
        KeywordBinding({{"red", {fx_.item, 1}}, {"candle", {fx_.item, 2}}})}) {
    auto bu = MakeBottomUp();
    auto buwr = MakeBottomUpWithReuse();
    auto td = MakeTopDown();
    auto tdwr = MakeTopDownWithReuse();
    EXPECT_LE(fx_.Run(buwr.get(), binding).stats.sql_queries,
              fx_.Run(bu.get(), binding).stats.sql_queries);
    EXPECT_LE(fx_.Run(tdwr.get(), binding).stats.sql_queries,
              fx_.Run(td.get(), binding).stats.sql_queries);
  }
}

TEST_F(StrategiesTest, SbhNeverExecutesMoreThanReturnEverything) {
  auto re = MakeReturnEverything();
  for (const KeywordBinding& binding : {Q1Binding(), Q2Binding()}) {
    for (double pa : {0.1, 0.5, 0.9}) {
      auto sbh = MakeScoreBased(SbhOptions{pa});
      EXPECT_LE(fx_.Run(sbh.get(), binding).stats.sql_queries,
                fx_.Run(re.get(), binding).stats.sql_queries)
          << "pa=" << pa;
    }
  }
}

TEST_F(StrategiesTest, BaseNodesCostNoSql) {
  // A single-keyword query whose only MTN is a base node: zero SQL.
  KeywordBinding binding({{"vanilla", {fx_.item, 1}}});
  for (TraversalKind kind : AllTraversalKinds()) {
    auto strategy = MakeStrategy(kind);
    TraversalResult r = fx_.Run(strategy.get(), binding);
    ASSERT_EQ(r.outcomes.size(), 1u);
    EXPECT_TRUE(r.outcomes[0].alive);
    EXPECT_EQ(r.stats.sql_queries, 0u) << strategy->name();
  }
}

TEST_F(StrategiesTest, StrategyNamesMatchPaperLabels) {
  EXPECT_EQ(MakeStrategy(TraversalKind::kBottomUp)->name(), "BU");
  EXPECT_EQ(MakeStrategy(TraversalKind::kTopDown)->name(), "TD");
  EXPECT_EQ(MakeStrategy(TraversalKind::kBottomUpWithReuse)->name(), "BUWR");
  EXPECT_EQ(MakeStrategy(TraversalKind::kTopDownWithReuse)->name(), "TDWR");
  EXPECT_EQ(MakeStrategy(TraversalKind::kScoreBased)->name(), "SBH");
  EXPECT_EQ(TraversalKindName(TraversalKind::kScoreBased), "SBH");
}

}  // namespace
}  // namespace kwsdbg
