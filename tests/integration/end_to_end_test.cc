// Whole-pipeline integration tests: the scenarios the examples demonstrate,
// asserted end to end — the merchandising fix loop, artifact persistence
// equivalence, the JSON pipeline, and cross-strategy report stability on
// the full workload.
#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "datasets/dblife.h"
#include "datasets/ecommerce.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "debugger/report_json.h"
#include "lattice/lattice_generator.h"
#include "lattice/lattice_io.h"
#include "storage/csv.h"

namespace kwsdbg {
namespace {

// The paper's motivating loop (Sec. 1): non-answer -> debug -> vocabulary
// fix -> answers, with no item rows touched.
TEST(EndToEndTest, MerchandisingFixLoopResolvesNonAnswer) {
  EcommerceConfig config;
  config.num_items = 300;
  auto ds = GenerateEcommerce(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());

  auto count_color_interpretation_answers = [&](const char* query) {
    InvertedIndex index = InvertedIndex::Build(*ds->db);
    NonAnswerDebugger debugger(ds->db.get(), lattice->get(), &index);
    auto report = debugger.Debug(query);
    KWSDBG_CHECK(report.ok());
    // Find the interpretation where "saffron" is a Color.
    for (const auto& interp : report->interpretations) {
      if (interp.binding.find("saffron->Color[1]") != std::string::npos) {
        return std::make_pair(interp.answers.size(),
                              interp.non_answers.size());
      }
    }
    return std::make_pair(size_t{0}, size_t{0});
  };

  // Before: "saffron" is not in the color vocabulary, so there is no
  // saffron-as-a-color interpretation at all (the index never maps it to
  // Color). After the synonym fix there is, and it has answers.
  auto [before_answers, before_non] =
      count_color_interpretation_answers("saffron candle");
  EXPECT_EQ(before_answers + before_non, 0u);

  auto added = AddColorSynonym(ds->db.get(), "yellow", "saffron");
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(*added);

  auto [after_answers, after_non] =
      count_color_interpretation_answers("saffron candle");
  EXPECT_GT(after_answers, 0u);
  EXPECT_EQ(after_non, 0u);
}

// Persisted artifacts (CSV tables + saved lattice) produce byte-identical
// debugging reports to the fresh pipeline.
TEST(EndToEndTest, PersistedArtifactsGiveIdenticalReports) {
  DblifeConfig config;
  config.num_persons = 80;
  config.num_publications = 120;
  config.num_conferences = 10;
  config.num_organizations = 15;
  config.num_topics = 12;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 4;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());

  // Fresh report.
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  NonAnswerDebugger fresh(ds->db.get(), lattice->get(), &index);
  auto fresh_report = fresh.Debug("widom trio");
  ASSERT_TRUE(fresh_report.ok());

  // Round-trip the tables through CSV and the lattice through its format.
  Database db2;
  for (const std::string& name : ds->db->TableNames()) {
    std::ostringstream out;
    ASSERT_TRUE(WriteTableCsv(*ds->db->FindTable(name), &out).ok());
    std::istringstream in(out.str());
    auto table = ReadTableCsv(name, &in);
    ASSERT_TRUE(table.ok()) << name;
    ASSERT_TRUE(db2.AddTable(std::make_unique<Table>(std::move(*table))).ok());
  }
  std::ostringstream lat_out;
  ASSERT_TRUE(SaveLattice(**lattice, &lat_out).ok());
  std::istringstream lat_in(lat_out.str());
  auto lattice2 = LoadLattice(ds->schema, &lat_in);
  ASSERT_TRUE(lattice2.ok());

  InvertedIndex index2 = InvertedIndex::Build(db2);
  NonAnswerDebugger loaded(&db2, lattice2->get(), &index2);
  auto loaded_report = loaded.Debug("widom trio");
  ASSERT_TRUE(loaded_report.ok());

  // Node ids may differ between the lattices, but the rendered reports —
  // networks, SQL, counts — must match exactly (timings are wall-clock
  // noise; blank them first).
  auto strip_times = [](DebugReport* report) {
    report->bind_millis = 0;
    report->debug_millis = 0;
    for (auto& interp : report->interpretations) {
      interp.traversal_stats.sql_millis = 0;
      interp.traversal_stats.total_millis = 0;
      interp.traversal_stats.index_build_millis = 0;
      interp.prune_stats.prune_millis = 0;
      interp.prune_stats.mtn_millis = 0;
    }
  };
  strip_times(&*fresh_report);
  strip_times(&*loaded_report);
  EXPECT_EQ(DebugReportToJson(*fresh_report),
            DebugReportToJson(*loaded_report));
}

// The JSON pipeline carries the full workload without structural surprises.
TEST(EndToEndTest, WorkloadJsonReportsAreWellFormed) {
  DblifeConfig config;
  config.num_persons = 80;
  config.num_publications = 120;
  config.num_conferences = 10;
  config.num_organizations = 15;
  config.num_topics = 12;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 3;
  lconfig.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  NonAnswerDebugger debugger(ds->db.get(), lattice->get(), &index);
  for (const WorkloadQuery& q : PaperWorkload()) {
    auto report = debugger.Debug(q.text);
    ASSERT_TRUE(report.ok()) << q.id;
    std::string json = DebugReportToJson(*report);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"interpretations\""), std::string::npos) << q.id;
  }
}

// Strategies are interchangeable at the facade level: the rendered report
// is identical whichever traversal produced it.
TEST(EndToEndTest, ReportsAreStrategyInvariant) {
  DblifeConfig config;
  config.num_persons = 60;
  config.num_publications = 100;
  config.num_conferences = 10;
  config.num_organizations = 12;
  config.num_topics = 10;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 4;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);

  auto render = [&](TraversalKind kind, const std::string& query) {
    DebuggerOptions options;
    options.strategy = kind;
    NonAnswerDebugger debugger(ds->db.get(), lattice->get(), &index,
                               options);
    auto report = debugger.Debug(query);
    KWSDBG_CHECK(report.ok());
    // Blank out the stats (they legitimately differ per strategy).
    report->bind_millis = 0;
    report->debug_millis = 0;
    for (auto& interp : report->interpretations) {
      interp.traversal_stats = TraversalStats{};
      interp.prune_stats.prune_millis = 0;
      interp.prune_stats.mtn_millis = 0;
    }
    return DebugReportToJson(*report);
  };

  for (const char* q : {"widom trio", "agrawal chaudhuri das"}) {
    const std::string reference = render(TraversalKind::kScoreBased, q);
    for (TraversalKind kind : AllTraversalKinds()) {
      EXPECT_EQ(render(kind, q), reference)
          << q << " / " << TraversalKindName(kind);
    }
  }
}

}  // namespace
}  // namespace kwsdbg
