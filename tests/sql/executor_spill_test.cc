// Out-of-core executor coverage: a spilled database + spilled posting lists
// must produce exactly the rows the resident configuration produces, while
// the storage counters surface the page traffic.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"
#include "sql/executor.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace {

// Sorted textual projection of a result set — an order-insensitive multiset
// fingerprint (resident and spilled plans may emit rows in different order).
std::vector<std::string> Fingerprint(const ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const Tuple& row : rs.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ExecutorSpillTest : public testing::Test {
 protected:
  void SetUp() override {
    auto resident = BuildToyProductDatabase();
    ASSERT_TRUE(resident.ok());
    resident_db_ = std::move(resident->db);
    resident_index_ =
        std::make_unique<InvertedIndex>(InvertedIndex::Build(*resident_db_));
    resident_exec_ = std::make_unique<Executor>(resident_db_.get());
    resident_exec_->RegisterTextIndex(resident_index_.get());

    auto spilled = BuildToyProductDatabase();
    ASSERT_TRUE(spilled.ok());
    spilled_db_ = std::move(spilled->db);
    spilled_index_ =
        std::make_unique<InvertedIndex>(InvertedIndex::Build(*spilled_db_));
    ASSERT_TRUE(spilled_index_->SpillToDisk("", /*cache_lists=*/4).ok());
    SpillOptions opts;
    opts.page_size = 512;
    ASSERT_TRUE(spilled_db_->ApplyMemoryBudget(1, opts).ok());
    ASSERT_TRUE(spilled_db_->AnySpilled());
    spilled_exec_ = std::make_unique<Executor>(spilled_db_.get());
    spilled_exec_->RegisterTextIndex(spilled_index_.get());
  }

  JoinNetworkQuery ThreeWay(const std::string& p, const std::string& i,
                            const std::string& c) {
    JoinNetworkQuery q;
    q.vertices = {{"ProductType", "P", p}, {"Item", "I", i}, {"Color", "C", c}};
    q.joins = {{1, "p_type", 0, "id"}, {1, "color", 2, "id"}};
    return q;
  }

  void ExpectParity(const JoinNetworkQuery& q) {
    auto r = resident_exec_->Execute(q);
    auto s = spilled_exec_->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(Fingerprint(*r), Fingerprint(*s));

    auto rn = resident_exec_->IsNonEmpty(q);
    auto sn = spilled_exec_->IsNonEmpty(q);
    ASSERT_TRUE(rn.ok() && sn.ok());
    EXPECT_EQ(*rn, *sn);
  }

  std::unique_ptr<Database> resident_db_, spilled_db_;
  std::unique_ptr<InvertedIndex> resident_index_, spilled_index_;
  std::unique_ptr<Executor> resident_exec_, spilled_exec_;
};

TEST_F(ExecutorSpillTest, LiveJoinParity) {
  ExpectParity(ThreeWay("candle", "scented", "red"));
}

TEST_F(ExecutorSpillTest, DeadJoinParity) {
  // q1 of the paper: dead network must stay dead out-of-core.
  ExpectParity(ThreeWay("candle", "scented", "saffron"));
}

TEST_F(ExecutorSpillTest, KeywordOnlyAndFreeVertexParity) {
  JoinNetworkQuery kw;
  kw.vertices = {{"Item", "I", "scented"}};
  ExpectParity(kw);

  JoinNetworkQuery join_only;
  join_only.vertices = {{"ProductType", "P", ""}, {"Item", "I", ""}};
  join_only.joins = {{1, "p_type", 0, "id"}};
  ExpectParity(join_only);
}

TEST_F(ExecutorSpillTest, MissingKeywordRejectedFastInBothModes) {
  JoinNetworkQuery q = ThreeWay("candle", "zzznoterm", "red");
  auto r = resident_exec_->IsNonEmpty(q);
  auto s = spilled_exec_->IsNonEmpty(q);
  ASSERT_TRUE(r.ok() && s.ok());
  EXPECT_FALSE(*r);
  EXPECT_FALSE(*s);
  // The profile answers "no such term" without any posting I/O.
  EXPECT_EQ(spilled_index_->io_stats().posting_reads, 0u);
}

TEST_F(ExecutorSpillTest, StorageCountersSurfaceInStats) {
  ASSERT_TRUE(spilled_exec_->Execute(ThreeWay("candle", "scented", "red")).ok());
  const ExecutorStats& stats = spilled_exec_->stats();
  EXPECT_GT(stats.page_reads + stats.page_hits, 0u);
  EXPECT_GT(stats.posting_reads, 0u);

  // The resident executor never touches the storage tier.
  ASSERT_TRUE(
      resident_exec_->Execute(ThreeWay("candle", "scented", "red")).ok());
  const ExecutorStats& rstats = resident_exec_->stats();
  EXPECT_EQ(rstats.page_reads, 0u);
  EXPECT_EQ(rstats.page_hits, 0u);
  EXPECT_EQ(rstats.posting_reads, 0u);
}

TEST_F(ExecutorSpillTest, ExplainRunsOnSpilledDatabase) {
  auto plan = spilled_exec_->Explain(ThreeWay("candle", "scented", "red"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("ProductType"), std::string::npos);
}

TEST_F(ExecutorSpillTest, ScanFallbackParityWithoutIndex) {
  // LIKE-scan mode exercises the paged row reads hardest: every text cell
  // of every candidate table is faulted through the pool.
  ExecutorOptions scan;
  scan.use_text_index = false;
  Executor resident_scan(resident_db_.get(), scan);
  Executor spilled_scan(spilled_db_.get(), scan);
  JoinNetworkQuery q = ThreeWay("candle", "scented", "red");
  auto r = resident_scan.Execute(q);
  auto s = spilled_scan.Execute(q);
  ASSERT_TRUE(r.ok() && s.ok());
  EXPECT_EQ(Fingerprint(*r), Fingerprint(*s));
  EXPECT_GT(spilled_scan.stats().page_reads + spilled_scan.stats().page_hits,
            0u);
}

}  // namespace
}  // namespace kwsdbg
