// Executor v2 coverage: posting-list candidate sourcing vs. the scan
// fallback, semijoin pre-reduction, true existence mode, the composite-join
// constraint fix, and stats accounting on every exit path.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"
#include "sql/executor.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace {

JoinNetworkQuery SingleTable(const std::string& table,
                             const std::string& keyword) {
  JoinNetworkQuery q;
  q.vertices = {{table, table + "_1", keyword}};
  return q;
}

/// Toy product DB + its inverted index, with one indexed and one plain
/// (scan-only) executor over the same data.
class ExecutorV2Test : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    index_ = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db_));
    indexed_ = std::make_unique<Executor>(db_.get());
    indexed_->RegisterTextIndex(index_.get());
    ExecutorOptions v1;
    v1.use_text_index = false;
    v1.semijoin_reduction = false;
    plain_ = std::make_unique<Executor>(db_.get(), v1);
  }

  /// q1 of the paper: candle x scented item x saffron color — dead.
  JoinNetworkQuery DeadThreeWay() {
    JoinNetworkQuery q;
    q.vertices = {{"ProductType", "P", "candle"},
                  {"Item", "I", "scented"},
                  {"Color", "C", "saffron"}};
    q.joins = {{1, "p_type", 0, "id"}, {1, "color", 2, "id"}};
    return q;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<Executor> indexed_;
  std::unique_ptr<Executor> plain_;
};

// --- composite-join (two predicates between one instance pair) fix --------

/// Two tables joined on BOTH columns; only one column pair matches. The
/// seed executor skipped every constraint to the probed vertex, so the
/// second predicate went unchecked and a dead network came back alive.
class CompositeJoinTest : public testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    auto r = db_->CreateTable(
        "R", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r)->AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
    auto s = db_->CreateTable(
        "S", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
    ASSERT_TRUE(s.ok());
    // S agrees with R on `a` but not on `b`.
    ASSERT_TRUE((*s)->AppendRow({Value(int64_t{1}), Value(int64_t{3})}).ok());
  }

  JoinNetworkQuery BothColumnsJoin() {
    JoinNetworkQuery q;
    q.vertices = {{"R", "r", ""}, {"S", "s", ""}};
    q.joins = {{0, "a", 1, "a"}, {0, "b", 1, "b"}};
    return q;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(CompositeJoinTest, SecondPredicateOfParallelEdgeIsEnforced) {
  Executor executor(db_.get());
  auto rs = executor.Execute(BothColumnsJoin());
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty())
      << "row violating the second join predicate was emitted";
  auto alive = executor.IsNonEmpty(BothColumnsJoin());
  ASSERT_TRUE(alive.ok());
  EXPECT_FALSE(*alive);
}

TEST_F(CompositeJoinTest, FullyMatchingCompositeJoinStillJoins) {
  auto s = db_->FindTable("S");
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(const_cast<Table*>(s)
                  ->AppendRow({Value(int64_t{1}), Value(int64_t{2})})
                  .ok());
  Executor executor(db_.get());
  auto rs = executor.Execute(BothColumnsJoin());
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][3].AsInt(), 2);  // s.b of the agreeing row
}

TEST_F(CompositeJoinTest, SemijoinDisabledStillEnforcesBothPredicates) {
  ExecutorOptions v1;
  v1.use_text_index = false;
  v1.semijoin_reduction = false;
  Executor executor(db_.get(), v1);
  auto rs = executor.Execute(BothColumnsJoin());
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

// --- posting-list candidates vs. scan fallback ----------------------------

TEST_F(ExecutorV2Test, PostingListAndScanCandidatesAgree) {
  // Every indexed term, plus proper infixes, multi-token phrases, and a
  // miss: the posting-list path must reproduce the LIKE-scan rows exactly.
  std::vector<std::string> keywords = index_->Terms();
  keywords.insert(keywords.end(),
                  {"affron", "cand", "scent", "2pck", "saffron scented",
                   "hand-made", "no_such_keyword", "oz"});
  const std::vector<std::string> tables = {"Item", "ProductType", "Color",
                                           "Attribute"};
  for (const std::string& kw : keywords) {
    for (const std::string& table : tables) {
      auto a = indexed_->Execute(SingleTable(table, kw));
      auto b = plain_->Execute(SingleTable(table, kw));
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->rows.size(), b->rows.size())
          << "keyword '" << kw << "' on " << table;
      for (size_t i = 0; i < a->rows.size(); ++i) {
        ASSERT_EQ(a->rows[i].size(), b->rows[i].size());
        for (size_t j = 0; j < a->rows[i].size(); ++j) {
          EXPECT_TRUE(a->rows[i][j] == b->rows[i][j])
              << "keyword '" << kw << "' on " << table << " row " << i;
        }
      }
    }
  }
  EXPECT_GT(indexed_->stats().posting_hits, 0u);
  EXPECT_EQ(plain_->stats().posting_hits, 0u);
}

TEST_F(ExecutorV2Test, IndexedPathNeverScansForSingleTokenKeywords) {
  for (const std::string& kw : {"saffron", "candle", "scented"}) {
    ASSERT_TRUE(indexed_->Execute(SingleTable("Item", kw)).ok());
  }
  EXPECT_EQ(indexed_->stats().keyword_scans, 0u);
  EXPECT_GT(indexed_->stats().posting_hits, 0u);
}

TEST_F(ExecutorV2Test, MultiTokenKeywordFallsBackToScan) {
  // "scented candle" cannot be a single indexed term; correctness comes
  // from the LIKE scan, and the fallback counter records it.
  auto rs = indexed_->Execute(SingleTable("Item", "scented candle"));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);  // items 2 and 3
  EXPECT_EQ(indexed_->stats().keyword_scans, 1u);
}

TEST_F(ExecutorV2Test, ClearCachesDropsPostingDerivedSets) {
  ASSERT_TRUE(indexed_->Execute(SingleTable("Item", "candle")).ok());
  const size_t hits = indexed_->stats().posting_hits;
  ASSERT_TRUE(indexed_->Execute(SingleTable("Item", "candle")).ok());
  EXPECT_EQ(indexed_->stats().posting_hits, hits);  // served from cache
  indexed_->ClearCaches();
  ASSERT_TRUE(indexed_->Execute(SingleTable("Item", "candle")).ok());
  EXPECT_EQ(indexed_->stats().posting_hits, hits + 1);
}

// --- semijoin pre-reduction -----------------------------------------------

TEST_F(ExecutorV2Test, SemijoinKillsDeadNetworkBeforeEnumeration) {
  auto rs = indexed_->Execute(DeadThreeWay());
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
  EXPECT_GE(indexed_->stats().semijoin_eliminations, 1u);
  EXPECT_EQ(indexed_->stats().rows_probed, 0u)
      << "dead network should die before the backtracking join starts";
}

TEST_F(ExecutorV2Test, SemijoinPreservesAliveResults) {
  JoinNetworkQuery q;
  q.vertices = {{"ProductType", "P", "candle"}, {"Item", "I", "scented"}};
  q.joins = {{1, "p_type", 0, "id"}};
  auto a = indexed_->Execute(q);
  auto b = plain_->Execute(q);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->rows.size(), 3u);
  ASSERT_EQ(b->rows.size(), 3u);
  for (size_t i = 0; i < a->rows.size(); ++i) {
    for (size_t j = 0; j < a->rows[i].size(); ++j) {
      EXPECT_TRUE(a->rows[i][j] == b->rows[i][j]);
    }
  }
  EXPECT_GT(indexed_->stats().rows_filtered, 0u);
}

// --- existence mode -------------------------------------------------------

TEST_F(ExecutorV2Test, ExistenceModeBuildsNoRows) {
  JoinNetworkQuery q;
  q.vertices = {{"ProductType", "P", "candle"}, {"Item", "I", ""}};
  q.joins = {{1, "p_type", 0, "id"}};
  auto alive = indexed_->IsNonEmpty(q);
  ASSERT_TRUE(alive.ok());
  EXPECT_TRUE(*alive);
  EXPECT_EQ(indexed_->stats().existence_probes, 1u);
  EXPECT_EQ(indexed_->stats().rows_output, 0u);
  EXPECT_EQ(indexed_->stats().queries_executed, 1u);
}

TEST_F(ExecutorV2Test, ExistenceModeAgreesWithExecuteOnDeadNetworks) {
  auto alive = indexed_->IsNonEmpty(DeadThreeWay());
  ASSERT_TRUE(alive.ok());
  EXPECT_FALSE(*alive);
  auto plain_alive = plain_->IsNonEmpty(DeadThreeWay());
  ASSERT_TRUE(plain_alive.ok());
  EXPECT_FALSE(*plain_alive);
}

// --- edge cases: NULLs, limit, empty tables, cross products ---------------

TEST_F(ExecutorV2Test, NullJoinKeysNeverMatch) {
  // Item 1 has NULL color; both paths must exclude it.
  JoinNetworkQuery q;
  q.vertices = {{"Item", "I", ""}, {"Color", "C", ""}};
  q.joins = {{0, "color", 1, "id"}};
  auto a = indexed_->Execute(q);
  auto b = plain_->Execute(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.size(), 3u);
  EXPECT_EQ(b->rows.size(), 3u);
}

TEST_F(ExecutorV2Test, LimitSemanticsMatchWithAndWithoutIndexProbes) {
  JoinNetworkQuery q;
  q.vertices = {{"ProductType", "P", "candle"}, {"Item", "I", ""}};
  q.joins = {{1, "p_type", 0, "id"}};
  for (size_t limit : {size_t{1}, size_t{2}, size_t{3}, size_t{0}}) {
    auto a = indexed_->Execute(q, limit);
    auto b = plain_->Execute(q, limit);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->rows.size(), b->rows.size()) << "limit " << limit;
    for (size_t i = 0; i < a->rows.size(); ++i) {
      for (size_t j = 0; j < a->rows[i].size(); ++j) {
        EXPECT_TRUE(a->rows[i][j] == b->rows[i][j]) << "limit " << limit;
      }
    }
  }
}

TEST_F(ExecutorV2Test, EmptyTableYieldsEmptyResults) {
  auto empty = db_->CreateTable(
      "Empty", Schema({{"id", DataType::kInt64}, {"t", DataType::kString}}));
  ASSERT_TRUE(empty.ok());
  // Rebuild the index so it covers the new (empty) table.
  InvertedIndex index2 = InvertedIndex::Build(*db_);
  Executor executor(db_.get());
  executor.RegisterTextIndex(&index2);
  auto rs = executor.Execute(SingleTable("Empty", ""));
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
  JoinNetworkQuery join;
  join.vertices = {{"Empty", "E", ""}, {"Item", "I", ""}};
  join.joins = {{0, "id", 1, "id"}};
  auto joined = executor.Execute(join);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->rows.empty());
  auto alive = executor.IsNonEmpty(join);
  ASSERT_TRUE(alive.ok());
  EXPECT_FALSE(*alive);
}

TEST_F(ExecutorV2Test, DisconnectedQueryIsCrossProduct) {
  JoinNetworkQuery q;
  q.vertices = {{"Color", "C", ""}, {"ProductType", "P", ""}};
  auto a = indexed_->Execute(q);
  auto b = plain_->Execute(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.size(), 12u);  // 4 colors x 3 product types
  EXPECT_EQ(b->rows.size(), 12u);
  EXPECT_EQ(indexed_->stats().semijoin_eliminations, 0u);
}

TEST_F(ExecutorV2Test, BoundDisconnectedQueryStillFiltersKeywords) {
  JoinNetworkQuery q;
  q.vertices = {{"Color", "C", "red"}, {"ProductType", "P", "candle"}};
  auto a = indexed_->Execute(q);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->rows.size(), 1u);
}

// --- stats accounting on every exit path ----------------------------------

TEST_F(ExecutorV2Test, InvalidQueriesAreCountedConsistently) {
  JoinNetworkQuery bad;
  bad.vertices = {{"NoSuch", "x", ""}};
  EXPECT_FALSE(indexed_->Execute(bad).ok());
  EXPECT_EQ(indexed_->stats().queries_executed, 1u);
  EXPECT_FALSE(indexed_->IsNonEmpty(bad).ok());
  EXPECT_EQ(indexed_->stats().queries_executed, 2u);
  EXPECT_EQ(indexed_->stats().existence_probes, 1u);
  // Valid queries keep counting from there.
  ASSERT_TRUE(indexed_->Execute(SingleTable("Item", "")).ok());
  EXPECT_EQ(indexed_->stats().queries_executed, 3u);
}

// --- ResultSet rendering --------------------------------------------------

TEST(ResultSetToStringTest, SeparatorRuleMatchesHeaderWidth) {
  ResultSet rs;
  rs.columns = {"a.x", "b.name"};
  rs.rows.push_back({Value(int64_t{1}), Value("v")});
  const std::string text = rs.ToString();
  const size_t first_newline = text.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  const std::string header = text.substr(0, first_newline);
  const size_t second_newline = text.find('\n', first_newline + 1);
  ASSERT_NE(second_newline, std::string::npos);
  const std::string rule =
      text.substr(first_newline + 1, second_newline - first_newline - 1);
  EXPECT_EQ(header, "a.x | b.name");
  EXPECT_EQ(rule, std::string(header.size(), '-'));
}

TEST(ResultSetToStringTest, VeryWideHeadersCapTheRuleAt120) {
  ResultSet rs;
  rs.columns = {std::string(200, 'c')};
  const std::string text = rs.ToString();
  const size_t first_newline = text.find('\n');
  const size_t second_newline = text.find('\n', first_newline + 1);
  EXPECT_EQ(second_newline - first_newline - 1, 120u);
}

}  // namespace
}  // namespace kwsdbg
