// Probe engine v3 index coverage: FlatRowIndex must return exactly the
// row-id runs (same rows, same ascending order) as the v2 RowIndex on any
// column, including NULL-riddled and duplicate-heavy ones, and its
// bucket-verification must survive forced slot collisions — distinct keys
// whose hashes land on the same bucket chain.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/flat_row_index.h"
#include "sql/row_index.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace kwsdbg {
namespace {

Table MakeTable(const std::string& name, DataType type) {
  Schema schema({{"k", type}});
  return Table(name, std::move(schema));
}

/// Asserts FlatRowIndex == RowIndex for every distinct value present plus
/// the given extra probe values (misses, NULL, wrong-typed keys).
void AssertParity(const Table& table, const std::vector<Value>& probes) {
  const RowIndex v2 = RowIndex::Build(table, 0);
  const FlatRowIndex v3 = FlatRowIndex::Build(table, 0);
  std::vector<Value> all = probes;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    all.push_back(table.at(row, 0));
  }
  for (const Value& v : all) {
    const std::vector<uint32_t>& expect = v2.Lookup(v);
    const RowSpan got = v3.Lookup(v);
    ASSERT_EQ(expect.size(), got.size()) << "probe " << v.ToString();
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect[i], got[i]) << "probe " << v.ToString() << " pos " << i;
    }
  }
  // Hashed entry point agrees with the convenience wrapper.
  for (const Value& v : all) {
    if (v.is_null()) continue;
    const RowSpan a = v3.Lookup(v);
    const RowSpan b = v3.LookupHashed(v.Hash64(), v);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.data, b.data);
  }
}

TEST(FlatRowIndexTest, EmptyTable) {
  Table t = MakeTable("empty", DataType::kInt64);
  const FlatRowIndex index = FlatRowIndex::Build(t, 0);
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_TRUE(index.Lookup(Value(int64_t{7})).empty());
  EXPECT_TRUE(index.Lookup(Value::Null()).empty());
}

TEST(FlatRowIndexTest, AllNullColumn) {
  Table t = MakeTable("nulls", DataType::kInt64);
  for (int i = 0; i < 10; ++i) t.AppendRowUnchecked({Value::Null()});
  const FlatRowIndex index = FlatRowIndex::Build(t, 0);
  EXPECT_EQ(index.num_keys(), 0u);
  EXPECT_TRUE(index.Lookup(Value::Null()).empty());
  AssertParity(t, {Value(int64_t{0})});
}

TEST(FlatRowIndexTest, RandomIntColumnWithNulls) {
  Rng rng(20260806);
  Table t = MakeTable("ints", DataType::kInt64);
  for (int i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.15)) {
      t.AppendRowUnchecked({Value::Null()});
    } else {
      // Narrow key range -> duplicate-heavy runs.
      t.AppendRowUnchecked(
          {Value(static_cast<int64_t>(rng.Uniform(300)) - 50)});
    }
  }
  AssertParity(t, {Value(int64_t{-12345}), Value::Null(), Value(1.0),
                   Value("1")});
}

TEST(FlatRowIndexTest, DuplicateHeavySingleKey) {
  Table t = MakeTable("dup", DataType::kInt64);
  for (int i = 0; i < 1000; ++i) {
    t.AppendRowUnchecked({Value(int64_t{42})});
  }
  const FlatRowIndex index = FlatRowIndex::Build(t, 0);
  EXPECT_EQ(index.num_keys(), 1u);
  EXPECT_EQ(index.stats().max_run_length, 1000u);
  const RowSpan run = index.Lookup(Value(int64_t{42}));
  ASSERT_EQ(run.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(run[i], i);
  AssertParity(t, {Value(int64_t{41})});
}

TEST(FlatRowIndexTest, RandomDoubleColumn) {
  Rng rng(7);
  Table t = MakeTable("doubles", DataType::kDouble);
  for (int i = 0; i < 2000; ++i) {
    if (rng.Bernoulli(0.1)) {
      t.AppendRowUnchecked({Value::Null()});
    } else {
      t.AppendRowUnchecked({Value(static_cast<double>(rng.Uniform(100)) / 4)});
    }
  }
  // Signed zeros are structurally equal, so they must share one run.
  t.AppendRowUnchecked({Value(0.0)});
  t.AppendRowUnchecked({Value(-0.0)});
  const FlatRowIndex index = FlatRowIndex::Build(t, 0);
  const RowSpan zero = index.Lookup(Value(0.0));
  const RowSpan neg_zero = index.Lookup(Value(-0.0));
  EXPECT_EQ(zero.data, neg_zero.data);
  EXPECT_GE(zero.size(), 2u);
  AssertParity(t, {Value(-1.5), Value(int64_t{0})});
}

TEST(FlatRowIndexTest, RandomStringColumn) {
  Rng rng(99);
  Table t = MakeTable("strings", DataType::kString);
  const char* pool[] = {"saffron", "candle", "scented", "azure", "soap",
                        "lavender", "crimson", "diffuser", ""};
  for (int i = 0; i < 3000; ++i) {
    if (rng.Bernoulli(0.1)) {
      t.AppendRowUnchecked({Value::Null()});
    } else if (rng.Bernoulli(0.3)) {
      t.AppendRowUnchecked({Value(pool[rng.Uniform(9)])});
    } else {
      std::string s = "key-" + std::to_string(rng.Uniform(400));
      t.AppendRowUnchecked({Value(std::move(s))});
    }
  }
  AssertParity(t, {Value("missing"), Value("saffro"), Value("saffron ")});
}

// Forced slot collisions: with `num_keys * 2` buckets rounded up to a power
// of two, seeding thousands of distinct string keys guarantees many keys
// share `hash & mask` chains, so every lookup must displace through
// occupied buckets and verify against the column to find its own run.
TEST(FlatRowIndexTest, SeededStringKeysCollideInBuckets) {
  Table t = MakeTable("collide", DataType::kString);
  const int kKeys = 4096;
  for (int i = 0; i < kKeys; ++i) {
    t.AppendRowUnchecked({Value("seed-" + std::to_string(i))});
    // Every key twice, interleaved, so runs are non-trivial as well.
    t.AppendRowUnchecked({Value("seed-" + std::to_string(i))});
  }
  const FlatRowIndex index = FlatRowIndex::Build(t, 0);
  EXPECT_EQ(index.num_keys(), static_cast<size_t>(kKeys));
  EXPECT_EQ(index.stats().max_run_length, 2u);
  // Occupancy 4096 keys in 16384 buckets: the birthday bound makes slot
  // collisions a statistical certainty; verify every key still resolves.
  AssertParity(t, {Value("seed--1"), Value("seed-4096")});
}

TEST(FlatRowIndexTest, StatsReflectShape) {
  Table t = MakeTable("stats", DataType::kInt64);
  for (int i = 0; i < 100; ++i) {
    t.AppendRowUnchecked({Value(static_cast<int64_t>(i % 10))});
  }
  const FlatRowIndex index = FlatRowIndex::Build(t, 0);
  EXPECT_EQ(index.stats().distinct_keys, 10u);
  EXPECT_EQ(index.stats().max_run_length, 10u);
  EXPECT_EQ(index.stats().arena_bytes, 100 * sizeof(uint32_t));
  EXPECT_GE(index.capacity(), 200u);
  EXPECT_GE(index.stats().bucket_bytes, index.capacity() * 16);
}

TEST(FlatRowIndexTest, ManagerCachesAndAccumulates) {
  Table t1 = MakeTable("t1", DataType::kInt64);
  Table t2 = MakeTable("t2", DataType::kInt64);
  for (int i = 0; i < 50; ++i) {
    t1.AppendRowUnchecked({Value(static_cast<int64_t>(i))});
    t2.AppendRowUnchecked({Value(static_cast<int64_t>(i / 2))});
  }
  FlatRowIndexManager manager;
  const FlatRowIndex& a = manager.GetOrBuild(&t1, 0);
  const FlatRowIndex& b = manager.GetOrBuild(&t1, 0);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(manager.num_indexes(), 1u);
  manager.GetOrBuild(&t2, 0);
  EXPECT_EQ(manager.num_indexes(), 2u);
  EXPECT_EQ(manager.totals().distinct_keys, 50u + 25u);
  manager.Clear();
  EXPECT_EQ(manager.num_indexes(), 0u);
}

}  // namespace
}  // namespace kwsdbg
