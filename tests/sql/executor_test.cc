#include "sql/executor.h"

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"

namespace kwsdbg {
namespace {

class ExecutorTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    executor_ = std::make_unique<Executor>(db_.get());
  }

  JoinNetworkQuery SingleTable(const std::string& table,
                               const std::string& keyword) {
    JoinNetworkQuery q;
    q.vertices = {{table, table + "_1", keyword}};
    return q;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, SingleTableScanNoKeyword) {
  auto rs = executor_->Execute(SingleTable("Item", ""));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);
  EXPECT_EQ(rs->columns.size(), 7u);
  EXPECT_EQ(rs->columns[1], "Item_1.name");
}

TEST_F(ExecutorTest, SingleTableKeywordFilter) {
  auto rs = executor_->Execute(SingleTable("Item", "candle"));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);  // items 2, 3, 4
}

TEST_F(ExecutorTest, KeywordMatchesAnyTextColumn) {
  // "saffron" appears in Item 1's name and Item 3's description.
  auto rs = executor_->Execute(SingleTable("Item", "saffron"));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
}

TEST_F(ExecutorTest, TwoWayJoin) {
  // Scented candles: join Item with ProductType 'candle'.
  JoinNetworkQuery q;
  q.vertices = {{"ProductType", "P", "candle"}, {"Item", "I", "scented"}};
  q.joins = {{1, "p_type", 0, "id"}};
  auto rs = executor_->Execute(q);
  ASSERT_TRUE(rs.ok());
  // Items 2, 3 have "scented" in name; item 4 has it in the description.
  EXPECT_EQ(rs->rows.size(), 3u);
}

TEST_F(ExecutorTest, ThreeWayJoinNonAnswerQ1) {
  // Paper q1: candles, scented, color = saffron -> empty.
  JoinNetworkQuery q;
  q.vertices = {{"ProductType", "P", "candle"},
                {"Item", "I", "scented"},
                {"Color", "C", "saffron"}};
  q.joins = {{1, "p_type", 0, "id"}, {1, "color", 2, "id"}};
  auto rs = executor_->Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
  auto alive = executor_->IsNonEmpty(q);
  ASSERT_TRUE(alive.ok());
  EXPECT_FALSE(*alive);
}

TEST_F(ExecutorTest, ThreeWayJoinNonAnswerQ2) {
  // Paper q2: candles, scented, attribute = saffron (scent) -> empty.
  JoinNetworkQuery q;
  q.vertices = {{"ProductType", "P", "candle"},
                {"Item", "I", "scented"},
                {"Attribute", "A", "saffron"}};
  q.joins = {{1, "p_type", 0, "id"}, {1, "attr", 2, "id"}};
  auto alive = executor_->IsNonEmpty(q);
  ASSERT_TRUE(alive.ok());
  EXPECT_FALSE(*alive);
}

TEST_F(ExecutorTest, SubQueryOfQ2IsAlive) {
  // I_scented join A_saffron: item 1 (scent=saffron attribute).
  JoinNetworkQuery q;
  q.vertices = {{"Item", "I", "scented"}, {"Attribute", "A", "saffron"}};
  q.joins = {{0, "attr", 1, "id"}};
  auto rs = executor_->Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);  // Item.id == 1
}

TEST_F(ExecutorTest, NullForeignKeyNeverJoins) {
  // Item 1 has NULL color; joining Item x Color must not match it.
  JoinNetworkQuery q;
  q.vertices = {{"Item", "I", ""}, {"Color", "C", ""}};
  q.joins = {{0, "color", 1, "id"}};
  auto rs = executor_->Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);  // items 2, 3, 4 only
}

TEST_F(ExecutorTest, LimitStopsEarly) {
  auto rs = executor_->Execute(SingleTable("Item", ""), /*limit=*/2);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
}

TEST_F(ExecutorTest, StatsCountQueries) {
  EXPECT_EQ(executor_->stats().queries_executed, 0u);
  ASSERT_TRUE(executor_->Execute(SingleTable("Item", "")).ok());
  ASSERT_TRUE(executor_->IsNonEmpty(SingleTable("Color", "red")).ok());
  EXPECT_EQ(executor_->stats().queries_executed, 2u);
  executor_->ResetStats();
  EXPECT_EQ(executor_->stats().queries_executed, 0u);
}

TEST_F(ExecutorTest, KeywordScansAreCached) {
  ASSERT_TRUE(executor_->Execute(SingleTable("Item", "candle")).ok());
  const size_t scans = executor_->stats().keyword_scans;
  ASSERT_TRUE(executor_->Execute(SingleTable("Item", "candle")).ok());
  EXPECT_EQ(executor_->stats().keyword_scans, scans);
  executor_->ClearCaches();
  ASSERT_TRUE(executor_->Execute(SingleTable("Item", "candle")).ok());
  EXPECT_EQ(executor_->stats().keyword_scans, scans + 1);
}

TEST_F(ExecutorTest, InvalidQueryRejected) {
  JoinNetworkQuery q;
  q.vertices = {{"NoSuch", "x", ""}};
  EXPECT_FALSE(executor_->Execute(q).ok());
}

TEST_F(ExecutorTest, ResultSetToStringMentionsRowCount) {
  auto rs = executor_->Execute(SingleTable("Color", ""));
  ASSERT_TRUE(rs.ok());
  EXPECT_NE(rs->ToString().find("(4 rows)"), std::string::npos);
}

TEST_F(ExecutorTest, CycleQuerySupported) {
  // Redundant cyclic constraint: Item joined to Color twice via the same
  // column pair; the executor must handle non-tree constraint graphs.
  JoinNetworkQuery q;
  q.vertices = {{"Item", "I", ""}, {"Color", "C", ""}};
  q.joins = {{0, "color", 1, "id"}, {1, "id", 0, "color"}};
  auto rs = executor_->Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
}

}  // namespace
}  // namespace kwsdbg
