// Executor property tests on randomized DBLife queries: results are
// independent of the order the query lists its instances and joins, limits
// are prefixes of the full result, and existence checks agree with full
// enumeration.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "datasets/dblife.h"
#include "sql/executor.h"

namespace kwsdbg {
namespace {

std::vector<std::string> SortedRowStrings(const ResultSet& rs,
                                          const std::vector<int>& col_order) {
  // col_order maps output columns to a canonical order so permuted vertex
  // lists stay comparable.
  std::vector<std::string> out;
  for (const Tuple& row : rs.rows) {
    std::string s;
    for (int c : col_order) {
      s += row[static_cast<size_t>(c)].ToString();
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Builds a 3-instance path query Person - writes - Publication with random
/// keywords, returning it plus a vertex permutation of it.
std::pair<JoinNetworkQuery, JoinNetworkQuery> PathQueryAndPermutation(
    Rng* rng) {
  const char* person_kws[] = {"", "widom", "gray", "das"};
  const char* pub_kws[] = {"", "data", "probabilistic", "histograms"};
  JoinNetworkQuery q;
  q.vertices = {{"Person", "P", person_kws[rng->Uniform(4)]},
                {"writes", "w", ""},
                {"Publication", "B", pub_kws[rng->Uniform(4)]}};
  q.joins = {{1, "person_id", 0, "id"}, {1, "publication_id", 2, "id"}};

  JoinNetworkQuery perm;
  perm.vertices = {q.vertices[2], q.vertices[0], q.vertices[1]};
  perm.joins = {{2, "publication_id", 0, "id"}, {2, "person_id", 1, "id"}};
  return {q, perm};
}

class ExecutorPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  static const DblifeDataset& Dataset() {
    static const DblifeDataset* ds = [] {
      DblifeConfig config;
      config.num_persons = 120;
      config.num_publications = 200;
      config.num_conferences = 10;
      config.num_organizations = 15;
      config.num_topics = 12;
      auto result = GenerateDblife(config);
      KWSDBG_CHECK(result.ok());
      return new DblifeDataset(std::move(*result));
    }();
    return *ds;
  }
};

TEST_P(ExecutorPropertyTest, VertexOrderIrrelevant) {
  const DblifeDataset& ds = Dataset();
  Executor executor(ds.db.get());
  Rng rng(GetParam());
  const size_t person_cols = ds.db->FindTable("Person")->schema().num_columns();
  const size_t writes_cols = ds.db->FindTable("writes")->schema().num_columns();
  const size_t pub_cols =
      ds.db->FindTable("Publication")->schema().num_columns();
  for (int iter = 0; iter < 10; ++iter) {
    auto [q, perm] = PathQueryAndPermutation(&rng);
    auto rs1 = executor.Execute(q);
    auto rs2 = executor.Execute(perm);
    ASSERT_TRUE(rs1.ok() && rs2.ok());
    // Canonical column order: Person cols, writes cols, Publication cols.
    std::vector<int> order1, order2;
    for (size_t i = 0; i < person_cols + writes_cols + pub_cols; ++i) {
      order1.push_back(static_cast<int>(i));
    }
    // perm layout: Publication, Person, writes.
    for (size_t i = 0; i < person_cols; ++i) {
      order2.push_back(static_cast<int>(pub_cols + i));
    }
    for (size_t i = 0; i < writes_cols; ++i) {
      order2.push_back(static_cast<int>(pub_cols + person_cols + i));
    }
    for (size_t i = 0; i < pub_cols; ++i) {
      order2.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(SortedRowStrings(*rs1, order1), SortedRowStrings(*rs2, order2));
  }
}

TEST_P(ExecutorPropertyTest, ExistsAgreesWithEnumeration) {
  const DblifeDataset& ds = Dataset();
  Executor executor(ds.db.get());
  Rng rng(GetParam() * 31 + 7);
  for (int iter = 0; iter < 10; ++iter) {
    auto [q, perm] = PathQueryAndPermutation(&rng);
    (void)perm;
    auto rs = executor.Execute(q);
    auto exists = executor.IsNonEmpty(q);
    ASSERT_TRUE(rs.ok() && exists.ok());
    EXPECT_EQ(*exists, !rs->rows.empty());
  }
}

TEST_P(ExecutorPropertyTest, LimitIsPrefixSized) {
  const DblifeDataset& ds = Dataset();
  Executor executor(ds.db.get());
  Rng rng(GetParam() * 97 + 3);
  for (int iter = 0; iter < 10; ++iter) {
    auto [q, perm] = PathQueryAndPermutation(&rng);
    (void)perm;
    auto full = executor.Execute(q);
    ASSERT_TRUE(full.ok());
    const size_t limit = 1 + rng.Uniform(5);
    auto limited = executor.Execute(q, limit);
    ASSERT_TRUE(limited.ok());
    EXPECT_EQ(limited->rows.size(), std::min(limit, full->rows.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         testing::Values(1, 17, 123, 999));

}  // namespace
}  // namespace kwsdbg
