#include "sql/select_runner.h"

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"
#include "sql/parser.h"

namespace kwsdbg {
namespace {

class SelectRunnerTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    executor_ = std::make_unique<Executor>(db_.get());
  }

  StatusOr<ResultSet> Run(const std::string& sql) {
    return RunSelect(executor_.get(), sql, *db_);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(SelectRunnerTest, CountStar) {
  auto rs = Run("SELECT COUNT(*) FROM Item");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->columns, (std::vector<std::string>{"count"}));
  EXPECT_EQ(rs->rows[0][0].AsInt(), 4);
}

TEST_F(SelectRunnerTest, CountStarWithPredicates) {
  auto rs = Run(
      "SELECT COUNT(*) FROM Item i, ProductType p WHERE i.p_type = p.id "
      "AND p.product_type = 'candle'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);
}

TEST_F(SelectRunnerTest, OrderByAscending) {
  auto rs = Run("SELECT * FROM Item i ORDER BY i.cost");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 4u);
  for (size_t i = 1; i < rs->rows.size(); ++i) {
    EXPECT_LE(rs->rows[i - 1][5].Compare(rs->rows[i][5]), 0);
  }
}

TEST_F(SelectRunnerTest, OrderByDescending) {
  auto rs = Run("SELECT * FROM Item i ORDER BY i.cost DESC");
  ASSERT_TRUE(rs.ok());
  EXPECT_DOUBLE_EQ(rs->rows[0][5].AsDouble(), 5.99);
}

TEST_F(SelectRunnerTest, OrderByStringSecondaryKey) {
  auto rs = Run("SELECT * FROM Item i ORDER BY i.cost, i.name DESC");
  ASSERT_TRUE(rs.ok());
  // Items 3 and 4 share cost 3.99; descending name puts "red checkered
  // candle" before "crimson scented candle".
  EXPECT_EQ(rs->rows[0][1].AsString(), "red checkered candle");
  EXPECT_EQ(rs->rows[1][1].AsString(), "crimson scented candle");
}

TEST_F(SelectRunnerTest, OrderByUnqualifiedColumn) {
  auto rs = Run("SELECT * FROM Color ORDER BY color");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows[0][1].AsString(), "pink");
}

TEST_F(SelectRunnerTest, OrderByNullsFirst) {
  auto rs = Run("SELECT * FROM Item i ORDER BY i.color");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows[0][3].is_null());  // item 1's NULL color first
}

TEST_F(SelectRunnerTest, LimitAfterOrder) {
  auto rs = Run("SELECT * FROM Item i ORDER BY i.cost DESC LIMIT 2");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rs->rows[0][5].AsDouble(), 5.99);
  EXPECT_DOUBLE_EQ(rs->rows[1][5].AsDouble(), 4.99);
}

TEST_F(SelectRunnerTest, LimitWithoutOrderStopsEarly) {
  auto rs = Run("SELECT * FROM Item LIMIT 3");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);
}

TEST_F(SelectRunnerTest, AmbiguousOrderColumnRejected) {
  auto rs = Run("SELECT * FROM Item i, Color c WHERE i.color = c.id "
                "ORDER BY id");
  EXPECT_FALSE(rs.ok());
}

TEST_F(SelectRunnerTest, UnknownOrderColumnRejected) {
  EXPECT_FALSE(Run("SELECT * FROM Item i ORDER BY i.nope").ok());
}

TEST_F(SelectRunnerTest, ParserRoundTripsNewClauses) {
  auto stmt = ParseSql(
      "SELECT COUNT(*) FROM Item i WHERE i.p_type = 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->count_star);
  auto stmt2 = ParseSql(
      "SELECT * FROM Item i ORDER BY i.cost DESC, i.name LIMIT 7");
  ASSERT_TRUE(stmt2.ok());
  ASSERT_EQ(stmt2->order_by.size(), 2u);
  EXPECT_TRUE(stmt2->order_by[0].descending);
  EXPECT_FALSE(stmt2->order_by[1].descending);
  EXPECT_EQ(stmt2->limit, 7u);
  EXPECT_EQ(ParseSql(stmt2->ToSql())->ToSql(), stmt2->ToSql());
}

TEST_F(SelectRunnerTest, NegativeOrZeroLimitRejected) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t LIMIT 0").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t LIMIT x").ok());
}

TEST_F(SelectRunnerTest, ExplainShowsPlan) {
  auto stmt = ParseSql(
      "SELECT * FROM Item i, ProductType p WHERE i.p_type = p.id AND "
      "(p.product_type LIKE '%candle%')");
  ASSERT_TRUE(stmt.ok());
  auto query = FromSelectStatement(*stmt, *db_);
  ASSERT_TRUE(query.ok());
  auto plan = executor_->Explain(*query);
  ASSERT_TRUE(plan.ok());
  // The keyword-bound ProductType instance (1 candidate row) leads; Item is
  // reached by index probe.
  EXPECT_NE(plan->find("1. p"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("keyword scan 'candle'"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("index probe"), std::string::npos) << *plan;
}

TEST_F(SelectRunnerTest, ExplainMarksCrossProducts) {
  JoinNetworkQuery q;
  q.vertices = {{"Color", "c", ""}, {"Attribute", "a", ""}};
  auto plan = executor_->Explain(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("cross product"), std::string::npos);
}

}  // namespace
}  // namespace kwsdbg
