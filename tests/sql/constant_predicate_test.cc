// Constant selections (`col = 'x'`, `col = 42`) through parser, converter,
// writer, and executor.
#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace kwsdbg {
namespace {

class ConstantPredicateTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    executor_ = std::make_unique<Executor>(db_.get());
  }

  StatusOr<ResultSet> Run(const std::string& sql) {
    KWSDBG_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
    KWSDBG_ASSIGN_OR_RETURN(JoinNetworkQuery q,
                            FromSelectStatement(stmt, *db_));
    return executor_->Execute(q);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ConstantPredicateTest, StringEquality) {
  auto rs = Run("SELECT * FROM Color c WHERE c.color = 'red'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
}

TEST_F(ConstantPredicateTest, StringEqualityIsCaseSensitive) {
  auto rs = Run("SELECT * FROM Color c WHERE c.color = 'RED'");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());  // unlike LIKE, = is exact
}

TEST_F(ConstantPredicateTest, IntEquality) {
  auto rs = Run("SELECT * FROM Item i WHERE i.p_type = 2");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 3u);  // the three candles
}

TEST_F(ConstantPredicateTest, DoubleEquality) {
  auto rs = Run("SELECT * FROM Item i WHERE i.cost = 3.99");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);  // items 3 and 4
}

TEST_F(ConstantPredicateTest, NullNeverEqualsConstant) {
  // Item 1 has NULL color; color = anything must not match it.
  auto rs = Run("SELECT * FROM Item i WHERE i.color = 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);  // items 3 and 4
}

TEST_F(ConstantPredicateTest, CombinesWithJoinAndLike) {
  auto rs = Run(
      "SELECT * FROM Item i, ProductType p WHERE i.p_type = p.id AND "
      "p.product_type = 'candle' AND i.name LIKE '%scented%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->rows.size(), 2u);  // items 2 and 3 — bare LIKE is
                                   // name-column-specific, so item 4
                                   // ("scented" only in description) is out
}

TEST_F(ConstantPredicateTest, TypeMismatchRejected) {
  EXPECT_FALSE(Run("SELECT * FROM Item i WHERE i.p_type = 'two'").ok());
  EXPECT_FALSE(Run("SELECT * FROM Item i WHERE i.name = 42").ok());
}

TEST_F(ConstantPredicateTest, WriterRoundTrip) {
  auto stmt = ParseSql(
      "SELECT * FROM Item i WHERE i.p_type = 2 AND i.name LIKE '%candle%'");
  ASSERT_TRUE(stmt.ok());
  auto q = FromSelectStatement(*stmt, *db_);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->selections.size(), 1u);
  auto sql = q->ToSql(*db_);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("i.p_type = 2"), std::string::npos);
  // Re-parse and re-execute: same result.
  auto stmt2 = ParseSql(*sql);
  ASSERT_TRUE(stmt2.ok()) << *sql;
  auto q2 = FromSelectStatement(*stmt2, *db_);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  auto rs1 = executor_->Execute(*q);
  auto rs2 = executor_->Execute(*q2);
  ASSERT_TRUE(rs1.ok() && rs2.ok());
  EXPECT_EQ(rs1->rows.size(), rs2->rows.size());
}

TEST_F(ConstantPredicateTest, SelectionOnUnknownColumnRejected) {
  EXPECT_FALSE(Run("SELECT * FROM Item i WHERE i.nope = 2").ok());
}

TEST_F(ConstantPredicateTest, ColumnSpecificLikeOnlySearchesThatColumn) {
  // Item 4 has "scented" only in the description; a name-specific LIKE must
  // not match it, while the keyword (OR-group) form must.
  auto by_name = Run("SELECT * FROM Item i WHERE i.name LIKE '%scented%'");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->rows.size(), 3u);  // items 1, 2, 3
  auto keyword = Run(
      "SELECT * FROM Item i WHERE (i.name LIKE '%scented%' OR "
      "i.description LIKE '%scented%')");
  ASSERT_TRUE(keyword.ok());
  EXPECT_EQ(keyword->rows.size(), 4u);
}

TEST_F(ConstantPredicateTest, LikeSelectionWildcards) {
  auto rs = Run("SELECT * FROM Color c WHERE c.color LIKE 'p_nk'");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][1].AsString(), "pink");
  auto prefix = Run("SELECT * FROM Color c WHERE c.synonyms LIKE 'golden%'");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->rows.size(), 1u);
}

}  // namespace
}  // namespace kwsdbg
