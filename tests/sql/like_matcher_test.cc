#include "sql/like_matcher.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(LikeMatchTest, ExactMatch) {
  EXPECT_TRUE(LikeMatch("candle", "candle"));
  EXPECT_FALSE(LikeMatch("candle", "candles"));
  EXPECT_FALSE(LikeMatch("candles", "candle"));
}

TEST(LikeMatchTest, CaseInsensitiveByDefault) {
  EXPECT_TRUE(LikeMatch("CANDLE", "candle"));
  EXPECT_TRUE(LikeMatch("%Scented%", "Saffron SCENTED Oil"));
  EXPECT_FALSE(LikeMatch("CANDLE", "candle", /*case_insensitive=*/false));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("%scented%", "saffron scented oil"));
  EXPECT_TRUE(LikeMatch("saffron%", "saffron scented oil"));
  EXPECT_TRUE(LikeMatch("%oil", "saffron scented oil"));
  EXPECT_TRUE(LikeMatch("%", ""));
  EXPECT_TRUE(LikeMatch("%%", "anything"));
  EXPECT_FALSE(LikeMatch("%candle%", "saffron scented oil"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("c_ndle", "candle"));
  EXPECT_FALSE(LikeMatch("c_ndle", "cndle"));
  EXPECT_TRUE(LikeMatch("___", "abc"));
  EXPECT_FALSE(LikeMatch("___", "ab"));
}

TEST(LikeMatchTest, MixedWildcards) {
  EXPECT_TRUE(LikeMatch("%sc_nted%", "vanilla scented candle"));
  EXPECT_TRUE(LikeMatch("s%n", "saffron"));
  EXPECT_FALSE(LikeMatch("s%z", "saffron"));
}

TEST(LikeMatchTest, BacktrackingAcrossStars) {
  // Requires re-trying the '%' expansion: "ab" then "ab" again.
  EXPECT_TRUE(LikeMatch("%ab%ab%", "xxabyyabzz"));
  EXPECT_FALSE(LikeMatch("%ab%ab%", "xxabyy"));
}

TEST(LikeMatchTest, EmptyPatternMatchesOnlyEmpty) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_FALSE(LikeMatch("", "x"));
}

TEST(LikeMatchTest, EscapedWildcardsMatchLiterally) {
  EXPECT_TRUE(LikeMatch("100\\%", "100%"));
  EXPECT_FALSE(LikeMatch("100\\%", "100x"));
  EXPECT_FALSE(LikeMatch("100\\%", "1000"));
  EXPECT_TRUE(LikeMatch("a\\_b", "a_b"));
  EXPECT_FALSE(LikeMatch("a\\_b", "axb"));
  EXPECT_TRUE(LikeMatch("c:\\\\temp", "c:\\temp"));
  EXPECT_TRUE(LikeMatch("%50\\%%", "save 50% today"));
  EXPECT_FALSE(LikeMatch("%50\\%%", "save 50 today"));
  // A trailing lone backslash is a literal backslash.
  EXPECT_TRUE(LikeMatch("x\\", "x\\"));
  EXPECT_FALSE(LikeMatch("x\\", "x"));
}

TEST(ContainsPatternTest, BuildsAndExtracts) {
  EXPECT_EQ(ContainsPattern("saffron"), "%saffron%");
  EXPECT_EQ(ExtractContainedKeyword("%saffron%"), "saffron");
  EXPECT_EQ(ExtractContainedKeyword("saffron%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%saf%fron%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%sa_f%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%"), "");
}

TEST(ContainsPatternTest, EscapesWildcardKeywords) {
  // Regression: "100%" used to build the over-matching pattern "%100%%" and
  // ExtractContainedKeyword could not invert it. Escaping keeps both
  // directions exact.
  EXPECT_EQ(ContainsPattern("100%"), "%100\\%%");
  EXPECT_EQ(ExtractContainedKeyword("%100\\%%"), "100%");
  EXPECT_EQ(ContainsPattern("a_b"), "%a\\_b%");
  EXPECT_EQ(ExtractContainedKeyword("%a\\_b%"), "a_b");
  EXPECT_EQ(ContainsPattern("back\\slash"), "%back\\\\slash%");
  EXPECT_EQ(ExtractContainedKeyword("%back\\\\slash%"), "back\\slash");
  // An escaped closing '%' is not a containment scan.
  EXPECT_EQ(ExtractContainedKeyword("%abc\\%"), "");

  EXPECT_TRUE(LikeMatch(ContainsPattern("100%"), "sale: 100% off"));
  EXPECT_FALSE(LikeMatch(ContainsPattern("100%"), "sale: 1000 off"));
  EXPECT_TRUE(LikeMatch(ContainsPattern("a_b"), "xx a_b yy"));
  EXPECT_FALSE(LikeMatch(ContainsPattern("a_b"), "xx aXb yy"));
}

TEST(ContainsPatternTest, RoundTripsEveryKeyword) {
  for (const char* kw : {"plain", "100%", "_", "%", "\\", "a\\%b", "%_%",
                         "trailing\\"}) {
    EXPECT_EQ(ExtractContainedKeyword(ContainsPattern(kw)), kw) << kw;
  }
}

}  // namespace
}  // namespace kwsdbg
