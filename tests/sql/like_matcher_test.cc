#include "sql/like_matcher.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(LikeMatchTest, ExactMatch) {
  EXPECT_TRUE(LikeMatch("candle", "candle"));
  EXPECT_FALSE(LikeMatch("candle", "candles"));
  EXPECT_FALSE(LikeMatch("candles", "candle"));
}

TEST(LikeMatchTest, CaseInsensitiveByDefault) {
  EXPECT_TRUE(LikeMatch("CANDLE", "candle"));
  EXPECT_TRUE(LikeMatch("%Scented%", "Saffron SCENTED Oil"));
  EXPECT_FALSE(LikeMatch("CANDLE", "candle", /*case_insensitive=*/false));
}

TEST(LikeMatchTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("%scented%", "saffron scented oil"));
  EXPECT_TRUE(LikeMatch("saffron%", "saffron scented oil"));
  EXPECT_TRUE(LikeMatch("%oil", "saffron scented oil"));
  EXPECT_TRUE(LikeMatch("%", ""));
  EXPECT_TRUE(LikeMatch("%%", "anything"));
  EXPECT_FALSE(LikeMatch("%candle%", "saffron scented oil"));
}

TEST(LikeMatchTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("c_ndle", "candle"));
  EXPECT_FALSE(LikeMatch("c_ndle", "cndle"));
  EXPECT_TRUE(LikeMatch("___", "abc"));
  EXPECT_FALSE(LikeMatch("___", "ab"));
}

TEST(LikeMatchTest, MixedWildcards) {
  EXPECT_TRUE(LikeMatch("%sc_nted%", "vanilla scented candle"));
  EXPECT_TRUE(LikeMatch("s%n", "saffron"));
  EXPECT_FALSE(LikeMatch("s%z", "saffron"));
}

TEST(LikeMatchTest, BacktrackingAcrossStars) {
  // Requires re-trying the '%' expansion: "ab" then "ab" again.
  EXPECT_TRUE(LikeMatch("%ab%ab%", "xxabyyabzz"));
  EXPECT_FALSE(LikeMatch("%ab%ab%", "xxabyy"));
}

TEST(LikeMatchTest, EmptyPatternMatchesOnlyEmpty) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_FALSE(LikeMatch("", "x"));
}

TEST(ContainsPatternTest, BuildsAndExtracts) {
  EXPECT_EQ(ContainsPattern("saffron"), "%saffron%");
  EXPECT_EQ(ExtractContainedKeyword("%saffron%"), "saffron");
  EXPECT_EQ(ExtractContainedKeyword("saffron%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%saf%fron%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%sa_f%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%%"), "");
  EXPECT_EQ(ExtractContainedKeyword("%"), "");
}

}  // namespace
}  // namespace kwsdbg
