#include "sql/join_network.h"

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"
#include "sql/parser.h"

namespace kwsdbg {
namespace {

class JoinNetworkTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
  }
  std::unique_ptr<Database> db_;
};

JoinNetworkQuery CandleScentedQuery() {
  JoinNetworkQuery q;
  q.vertices = {{"ProductType", "P_1", "candle"},
                {"Item", "I_1", "scented"}};
  q.joins = {{1, "p_type", 0, "id"}};
  return q;
}

TEST_F(JoinNetworkTest, ToSqlShape) {
  auto sql = CandleScentedQuery().ToSql(*db_);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("SELECT * FROM ProductType AS P_1, Item AS I_1"),
            std::string::npos);
  EXPECT_NE(sql->find("I_1.p_type = P_1.id"), std::string::npos);
  // Keyword OR over all text columns of each bound instance.
  EXPECT_NE(sql->find("P_1.product_type LIKE '%candle%'"), std::string::npos);
  EXPECT_NE(sql->find("I_1.name LIKE '%scented%'"), std::string::npos);
  EXPECT_NE(sql->find("I_1.description LIKE '%scented%'"), std::string::npos);
}

TEST_F(JoinNetworkTest, ValidateRejectsUnknownTable) {
  JoinNetworkQuery q;
  q.vertices = {{"NoSuch", "x", ""}};
  EXPECT_EQ(q.Validate(*db_).code(), StatusCode::kNotFound);
}

TEST_F(JoinNetworkTest, ValidateRejectsDuplicateAlias) {
  JoinNetworkQuery q;
  q.vertices = {{"Item", "a", ""}, {"Color", "a", ""}};
  EXPECT_EQ(q.Validate(*db_).code(), StatusCode::kInvalidArgument);
}

TEST_F(JoinNetworkTest, ValidateRejectsBadJoinColumn) {
  JoinNetworkQuery q;
  q.vertices = {{"Item", "i", ""}, {"Color", "c", ""}};
  q.joins = {{0, "nope", 1, "id"}};
  EXPECT_FALSE(q.Validate(*db_).ok());
}

TEST_F(JoinNetworkTest, ValidateRejectsEmptyQuery) {
  JoinNetworkQuery q;
  EXPECT_EQ(q.Validate(*db_).code(), StatusCode::kInvalidArgument);
}

TEST_F(JoinNetworkTest, FromSelectStatementRoundTrip) {
  auto sql = CandleScentedQuery().ToSql(*db_);
  ASSERT_TRUE(sql.ok());
  auto stmt = ParseSql(*sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto q = FromSelectStatement(*stmt, *db_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->vertices.size(), 2u);
  EXPECT_EQ(q->vertices[0].keyword, "candle");
  EXPECT_EQ(q->vertices[1].keyword, "scented");
  ASSERT_EQ(q->joins.size(), 1u);
}

TEST_F(JoinNetworkTest, FromSelectRejectsNonStarSelect) {
  auto stmt = ParseSql("SELECT i.name FROM Item i");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(FromSelectStatement(*stmt, *db_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(JoinNetworkTest, FromSelectRejectsMixedOrGroup) {
  auto stmt = ParseSql(
      "SELECT * FROM Item i, Color c WHERE (i.name LIKE '%red%' OR "
      "c.color LIKE '%red%')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(FromSelectStatement(*stmt, *db_).ok());
}

TEST_F(JoinNetworkTest, BareLikesBecomeColumnSelections) {
  // Bare LIKE conjuncts are column-specific selections, so two different
  // patterns on one alias are fine — unlike OR-group keywords.
  auto stmt = ParseSql(
      "SELECT * FROM Item i WHERE i.name LIKE '%red%' AND "
      "i.description LIKE '%oils%'");
  ASSERT_TRUE(stmt.ok());
  auto q = FromSelectStatement(*stmt, *db_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->vertices[0].keyword.empty());
  EXPECT_EQ(q->like_selections.size(), 2u);
}

TEST_F(JoinNetworkTest, BareLikeKeepsFullPatternSyntax) {
  auto stmt = ParseSql("SELECT * FROM Item i WHERE i.name LIKE 'red%'");
  ASSERT_TRUE(stmt.ok());
  auto q = FromSelectStatement(*stmt, *db_);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->like_selections.size(), 1u);
  EXPECT_EQ(q->like_selections[0].pattern, "red%");
}

TEST_F(JoinNetworkTest, LikeOnNonTextColumnRejected) {
  auto stmt = ParseSql("SELECT * FROM Item i WHERE i.p_type LIKE '%2%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(FromSelectStatement(*stmt, *db_).ok());
}

TEST_F(JoinNetworkTest, FromSelectResolvesUnqualifiedColumns) {
  auto stmt = ParseSql(
      "SELECT * FROM Item, Color WHERE color = id AND "
      "synonyms LIKE '%red%'");
  ASSERT_TRUE(stmt.ok());
  // "color" is ambiguous (Item.color and Color.color) -> error.
  EXPECT_FALSE(FromSelectStatement(*stmt, *db_).ok());
}

TEST_F(JoinNetworkTest, FromSelectUnknownAlias) {
  auto stmt = ParseSql("SELECT * FROM Item i WHERE z.name LIKE '%x%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(FromSelectStatement(*stmt, *db_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(JoinNetworkTest, KeywordOnTextFreeTableRejectedAtToSql) {
  Database db;
  ASSERT_TRUE(db.CreateTable("rel", Schema({{"id", DataType::kInt64}})).ok());
  JoinNetworkQuery q;
  q.vertices = {{"rel", "r", "kw"}};
  EXPECT_EQ(q.ToSql(db).status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace kwsdbg
