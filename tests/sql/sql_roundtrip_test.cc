// Property test: rendering a join-network query to SQL text, parsing it
// back, and executing the reconstruction yields exactly the same result set
// as executing the original — across randomized queries over the toy schema.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "datasets/toy_product_db.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace kwsdbg {
namespace {

std::vector<std::string> SortedRowStrings(const ResultSet& rs) {
  std::vector<std::string> out;
  for (const Tuple& row : rs.rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Builds a random 1-3 instance query over the toy star schema: Item in the
/// middle, optional joins out to ProductType / Color / Attribute, random
/// keywords drawn from terms that do occur.
JoinNetworkQuery RandomQuery(Rng* rng) {
  const char* item_keywords[] = {"",     "scented", "candle",
                                 "oil",  "saffron", "checkered"};
  const char* p_keywords[] = {"", "candle", "oil", "incense"};
  const char* c_keywords[] = {"", "red", "saffron", "yellow", "orange"};
  const char* a_keywords[] = {"", "scent", "saffron", "pattern", "vanilla"};

  JoinNetworkQuery q;
  q.vertices.push_back(
      {"Item", "I_1", item_keywords[rng->Uniform(6)]});
  if (rng->Bernoulli(0.7)) {
    uint16_t idx = static_cast<uint16_t>(q.vertices.size());
    q.vertices.push_back({"ProductType", "P_1", p_keywords[rng->Uniform(4)]});
    q.joins.push_back({0, "p_type", idx, "id"});
  }
  if (rng->Bernoulli(0.7)) {
    uint16_t idx = static_cast<uint16_t>(q.vertices.size());
    q.vertices.push_back({"Color", "C_1", c_keywords[rng->Uniform(5)]});
    q.joins.push_back({0, "color", idx, "id"});
  }
  if (rng->Bernoulli(0.7)) {
    uint16_t idx = static_cast<uint16_t>(q.vertices.size());
    q.vertices.push_back({"Attribute", "A_1", a_keywords[rng->Uniform(5)]});
    q.joins.push_back({0, "attr", idx, "id"});
  }
  return q;
}

class SqlRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SqlRoundTripTest, RenderParseExecuteAgrees) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  Executor executor(ds->db.get());
  Rng rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    JoinNetworkQuery original = RandomQuery(&rng);
    auto sql = original.ToSql(*ds->db);
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    auto stmt = ParseSql(*sql);
    ASSERT_TRUE(stmt.ok()) << *sql << "\n" << stmt.status().ToString();
    auto reconstructed = FromSelectStatement(*stmt, *ds->db);
    ASSERT_TRUE(reconstructed.ok()) << reconstructed.status().ToString();

    auto rs1 = executor.Execute(original);
    auto rs2 = executor.Execute(*reconstructed);
    ASSERT_TRUE(rs1.ok() && rs2.ok());
    EXPECT_EQ(SortedRowStrings(*rs1), SortedRowStrings(*rs2)) << *sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripTest,
                         testing::Values(1, 2, 3, 4, 5, 11, 42, 1234));

}  // namespace
}  // namespace kwsdbg
