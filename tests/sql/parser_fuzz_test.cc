// Robustness sweep: the lexer/parser must return a Status — never crash,
// hang, or accept garbage silently — on randomized token soup, and must
// accept every statement produced by its own writer (generative round-trip).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/parser.h"

namespace kwsdbg {
namespace {

std::string RandomSoup(Rng* rng, size_t max_tokens) {
  const char* pieces[] = {"SELECT", "FROM",  "WHERE", "AND", "OR",   "LIKE",
                          "AS",     "*",     ",",     ".",   "=",    "(",
                          ")",      ";",     "t1",    "col", "'x'",  "42",
                          "3.14",   "'it''s'", "_id", "%",   "'%a%'", "\""};
  std::string out;
  const size_t n = 1 + rng->Uniform(max_tokens);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += " ";
    out += pieces[rng->Uniform(std::size(pieces))];
  }
  return out;
}

class ParserFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, NeverCrashesOnTokenSoup) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    std::string soup = RandomSoup(&rng, 24);
    auto result = ParseSql(soup);
    if (result.ok()) {
      // Whatever parsed must re-render and re-parse to the same text.
      auto again = ParseSql(result->ToSql());
      ASSERT_TRUE(again.ok()) << soup << " -> " << result->ToSql();
      EXPECT_EQ(result->ToSql(), again->ToSql());
    }
  }
}

TEST_P(ParserFuzzTest, GeneratedStatementsAlwaysParse) {
  Rng rng(GetParam() * 7919 + 1);
  const char* tables[] = {"Item", "Color", "ProductType"};
  const char* columns[] = {"id", "name", "color"};
  for (int iter = 0; iter < 200; ++iter) {
    SelectStatement stmt;
    stmt.select_all = true;
    const size_t nt = 1 + rng.Uniform(3);
    for (size_t i = 0; i < nt; ++i) {
      stmt.from.push_back(FromItem{tables[rng.Uniform(3)],
                                   "a" + std::to_string(i)});
    }
    const size_t np = rng.Uniform(4);
    for (size_t i = 0; i < np; ++i) {
      ColumnRef ref{"a" + std::to_string(rng.Uniform(nt)),
                    columns[rng.Uniform(3)]};
      switch (rng.Uniform(4)) {
        case 0:
          stmt.where.emplace_back(JoinPredicate{
              ref, ColumnRef{"a" + std::to_string(rng.Uniform(nt)), "id"}});
          break;
        case 1:
          stmt.where.emplace_back(LikePredicate{ref, "%x%"});
          break;
        case 2:
          stmt.where.emplace_back(ConstantPredicate{ref, true, "o'brien"});
          break;
        default: {
          OrLikes ors;
          ors.likes.push_back(LikePredicate{ref, "%y%"});
          ors.likes.push_back(LikePredicate{ref, "%y%"});
          stmt.where.emplace_back(std::move(ors));
        }
      }
    }
    const std::string sql = stmt.ToSql();
    auto parsed = ParseSql(sql);
    ASSERT_TRUE(parsed.ok()) << sql << "\n" << parsed.status().ToString();
    EXPECT_EQ(parsed->ToSql(), sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         testing::Values(1, 2, 3, 99, 424242));

}  // namespace
}  // namespace kwsdbg
