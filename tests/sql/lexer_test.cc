#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(LexerTest, BasicStatement) {
  auto toks = LexSql("SELECT * FROM t WHERE a = b");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 9u);  // incl. kEnd
  EXPECT_EQ((*toks)[0].type, SqlTokenType::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].type, SqlTokenType::kStar);
  EXPECT_EQ((*toks)[3].type, SqlTokenType::kIdentifier);
  EXPECT_EQ((*toks)[6].type, SqlTokenType::kEquals);
  EXPECT_EQ(toks->back().type, SqlTokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto toks = LexSql("select From wHeRe and or like as");
  ASSERT_TRUE(toks.ok());
  for (size_t i = 0; i + 1 < toks->size(); ++i) {
    EXPECT_EQ((*toks)[i].type, SqlTokenType::kKeyword) << i;
  }
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[2].text, "WHERE");
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  auto toks = LexSql("'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, SqlTokenType::kString);
  EXPECT_EQ((*toks)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_EQ(LexSql("'oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, NumbersIntegerAndDecimal) {
  auto toks = LexSql("42 3.14");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, SqlTokenType::kNumber);
  EXPECT_EQ((*toks)[0].text, "42");
  EXPECT_EQ((*toks)[1].text, "3.14");
}

TEST(LexerTest, DotAndQualifiedNames) {
  auto toks = LexSql("t1.col");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, SqlTokenType::kIdentifier);
  EXPECT_EQ((*toks)[1].type, SqlTokenType::kDot);
  EXPECT_EQ((*toks)[2].type, SqlTokenType::kIdentifier);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  EXPECT_EQ(LexSql("SELECT #").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto toks = LexSql("SELECT x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].offset, 0u);
  EXPECT_EQ((*toks)[1].offset, 7u);
}

TEST(LexerTest, UnderscoreIdentifiers) {
  auto toks = LexSql("person_id");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, SqlTokenType::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "person_id");
}

}  // namespace
}  // namespace kwsdbg
