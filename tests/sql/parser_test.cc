#include "sql/parser.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(ParserTest, SelectStarSingleTable) {
  auto stmt = ParseSql("SELECT * FROM Item");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->select_all);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table, "Item");
  EXPECT_TRUE(stmt->where.empty());
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt = ParseSql("SELECT * FROM Item AS i, Color c");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->from[0].alias, "i");
  EXPECT_EQ(stmt->from[1].alias, "c");
  EXPECT_EQ(stmt->from[1].EffectiveAlias(), "c");
}

TEST(ParserTest, JoinPredicates) {
  auto stmt =
      ParseSql("SELECT * FROM Item i, Color c WHERE i.color = c.id");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->where.size(), 1u);
  const auto* jp = std::get_if<JoinPredicate>(&stmt->where[0]);
  ASSERT_NE(jp, nullptr);
  EXPECT_EQ(jp->left.alias, "i");
  EXPECT_EQ(jp->left.column, "color");
  EXPECT_EQ(jp->right.ToString(), "c.id");
}

TEST(ParserTest, LikePredicate) {
  auto stmt = ParseSql("SELECT * FROM Item WHERE name LIKE '%candle%'");
  ASSERT_TRUE(stmt.ok());
  const auto* lp = std::get_if<LikePredicate>(&stmt->where[0]);
  ASSERT_NE(lp, nullptr);
  EXPECT_EQ(lp->pattern, "%candle%");
  EXPECT_EQ(lp->column.column, "name");
}

TEST(ParserTest, OrLikesGroup) {
  auto stmt = ParseSql(
      "SELECT * FROM Color c WHERE (c.color LIKE '%saffron%' OR "
      "c.synonyms LIKE '%saffron%')");
  ASSERT_TRUE(stmt.ok());
  const auto* ors = std::get_if<OrLikes>(&stmt->where[0]);
  ASSERT_NE(ors, nullptr);
  EXPECT_EQ(ors->likes.size(), 2u);
}

TEST(ParserTest, ConjunctionOfMixedPredicates) {
  auto stmt = ParseSql(
      "SELECT * FROM Item i, ProductType p WHERE i.p_type = p.id AND "
      "(p.product_type LIKE '%candle%') AND i.name LIKE '%scented%'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where.size(), 3u);
}

TEST(ParserTest, ExplicitSelectList) {
  auto stmt = ParseSql("SELECT i.name, c.color FROM Item i, Color c");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->select_all);
  ASSERT_EQ(stmt->select_list.size(), 2u);
  EXPECT_EQ(stmt->select_list[0].ToString(), "i.name");
}

TEST(ParserTest, OptionalSemicolon) {
  EXPECT_TRUE(ParseSql("SELECT * FROM t;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_EQ(ParseSql("SELECT * FROM t garbage extra").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, MissingFromRejected) {
  EXPECT_EQ(ParseSql("SELECT *").status().code(), StatusCode::kParseError);
}

TEST(ParserTest, BadLikeRhsRejected) {
  EXPECT_EQ(ParseSql("SELECT * FROM t WHERE a LIKE b").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, UnclosedParenRejected) {
  EXPECT_EQ(
      ParseSql("SELECT * FROM t WHERE (a LIKE '%x%'").status().code(),
      StatusCode::kParseError);
}

TEST(ParserTest, ErrorsCarryOffset) {
  Status s = ParseSql("SELECT * FROM t WHERE a LIKE 42").status();
  EXPECT_NE(s.message().find("offset"), std::string::npos);
}

TEST(ParserTest, ToSqlRoundTripsThroughParser) {
  const std::string sql =
      "SELECT * FROM Item AS i, Color AS c WHERE i.color = c.id AND "
      "(c.color LIKE '%red%' OR c.synonyms LIKE '%red%')";
  auto stmt = ParseSql(sql);
  ASSERT_TRUE(stmt.ok());
  auto reparsed = ParseSql(stmt->ToSql());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(stmt->ToSql(), reparsed->ToSql());
}

}  // namespace
}  // namespace kwsdbg
