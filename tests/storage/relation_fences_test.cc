// Relation-fence ordering and interleaving: BitFor mapping (including the
// catch-all high bit), disjoint-relation concurrency, reader/writer
// exclusion, the whole-database read guard (the checkpoint quiesce), null
// no-op guards, and a TSAN-targeted stress interleaving guards with
// LiveMutator::Apply.
#include "storage/relation_fences.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/live_mutator.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

TEST(RelationFencesTest, BitForMapsLowIndexesAndSaturatesHigh) {
  EXPECT_EQ(RelationFences::BitFor(0), uint64_t{1});
  EXPECT_EQ(RelationFences::BitFor(5), uint64_t{1} << 5);
  EXPECT_EQ(RelationFences::BitFor(62), uint64_t{1} << 62);
  // Catalogs wider than 63 tables share the catch-all bit.
  EXPECT_EQ(RelationFences::BitFor(63), uint64_t{1} << 63);
  EXPECT_EQ(RelationFences::BitFor(64), uint64_t{1} << 63);
  EXPECT_EQ(RelationFences::BitFor(1000), uint64_t{1} << 63);
}

TEST(RelationFencesTest, NullFencesGuardsAreNoOps) {
  // Single-threaded callers pass null fences; every guard must be free.
  RelationReadGuard read(nullptr, RelationReadGuard::kAllRelations);
  IndexReadGuard index(nullptr);
  RelationWriteGuard write(nullptr, 0);
}

TEST(RelationFencesTest, WritersOnDisjointRelationsDoNotBlockEachOther) {
  RelationFences fences(4);
  // Hold relation 0 exclusively; a writer on relation 2 must get through
  // without waiting on it (only the index gate is shared, and it is
  // released between the two acquisitions here).
  std::unique_lock<std::shared_mutex> hold(fences.fence(0));
  std::atomic<bool> acquired{false};
  std::thread other([&] {
    RelationWriteGuard guard(&fences, 2);
    acquired.store(true);
  });
  other.join();
  EXPECT_TRUE(acquired.load());
}

TEST(RelationFencesTest, ReadGuardBlocksWriterUntilRelease) {
  RelationFences fences(3);
  std::atomic<bool> writer_done{false};
  std::thread writer;
  {
    RelationReadGuard read(&fences, RelationFences::BitFor(1));
    writer = std::thread([&] {
      RelationWriteGuard guard(&fences, 1);
      writer_done.store(true, std::memory_order_release);
    });
    // The writer needs fence 1 exclusive; while the reader holds it shared
    // the writer must not complete. (Sleep-based non-blocking check: a
    // stuck-forever writer would fail the post-join assertion instead.)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(writer_done.load(std::memory_order_acquire));
  }
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(RelationFencesTest, AllRelationsReadGuardQuiescesEveryWriter) {
  // The checkpoint quiesce: kAllRelations holds every fence shared, so a
  // writer on ANY relation blocks until release, while other readers run.
  RelationFences fences(5);
  std::atomic<bool> writer_done{false};
  std::atomic<bool> reader_done{false};
  std::thread writer;
  std::thread reader;
  {
    RelationReadGuard quiesce(&fences, RelationReadGuard::kAllRelations);
    writer = std::thread([&] {
      RelationWriteGuard guard(&fences, 4);
      writer_done.store(true, std::memory_order_release);
    });
    reader = std::thread([&] {
      RelationReadGuard guard(&fences, RelationFences::BitFor(2));
      reader_done.store(true, std::memory_order_release);
    });
    reader.join();  // Readers coexist with the quiesce.
    EXPECT_TRUE(reader_done.load());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(writer_done.load(std::memory_order_acquire));
  }
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(RelationFencesTest, AscendingAcquisitionNeverDeadlocks) {
  // Readers with overlapping multi-relation masks acquire fences in
  // ascending index order, writers take fence-then-gate: no cycle is
  // possible. Hammer the orders concurrently; the test passing at all (and
  // under TSAN's deadlock detection) is the assertion.
  RelationFences fences(6);
  constexpr int kIters = 200;
  std::atomic<size_t> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if ((t + i) % 3 == 0) {
          RelationWriteGuard w(&fences, static_cast<size_t>(i % 6));
        } else if ((t + i) % 3 == 1) {
          // Overlapping pair masks: {i, i+1}.
          const uint64_t mask = RelationFences::BitFor(i % 5) |
                                RelationFences::BitFor(i % 5 + 1);
          RelationReadGuard r(&fences, mask);
        } else {
          RelationReadGuard r(&fences, RelationReadGuard::kAllRelations);
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(completed.load(), 4u * kIters);
}

TEST(RelationFencesTest, GuardsInterleaveWithLiveMutatorApply) {
  // The TSAN target: whole-db read guards (the checkpoint path) and
  // relation readers interleave with real LiveMutator writes. Readers
  // observe row counts under the fence; the final count must equal the
  // initial plus exactly the acknowledged inserts.
  ToyFixture fx;
  RelationFences fences(fx.db->num_tables());
  LiveMutator mutator(fx.db.get(), fx.index.get(), &fences);
  Table* color = fx.db->FindTable("Color");
  ASSERT_NE(color, nullptr);
  const size_t color_index = color->catalog_index();
  const size_t initial_rows = color->num_rows();

  constexpr int kWrites = 60;
  std::atomic<size_t> started{0};  ///< Bumped before Apply begins.
  std::atomic<size_t> acked{0};    ///< Bumped after Apply returned OK.
  std::atomic<bool> stop_readers{false};
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      started.fetch_add(1, std::memory_order_release);
      const Status s = mutator.Apply(Mutation::Insert(
          "Color", {Value(int64_t{100 + i}), Value("red"), Value("shade")}));
      ASSERT_TRUE(s.ok()) << s.ToString();
      acked.fetch_add(1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t last_seen = 0;
      while (!stop_readers.load(std::memory_order_acquire)) {
        // Bracket the fenced read: acknowledged inserts are a lower bound
        // (an acked write is visible), started ones an upper bound (a row
        // cannot appear before its Apply began).
        const size_t lo = acked.load(std::memory_order_acquire);
        size_t rows = 0;
        {
          const uint64_t mask = t == 0 ? RelationReadGuard::kAllRelations
                                       : RelationFences::BitFor(color_index);
          RelationReadGuard guard(&fences, mask);
          rows = color->num_rows();
        }
        const size_t hi = started.load(std::memory_order_acquire);
        ASSERT_GE(rows, last_seen);  // Monotone under an insert-only stream.
        ASSERT_GE(rows, initial_rows + lo);
        ASSERT_LE(rows, initial_rows + hi);
        last_seen = rows;
      }
    });
  }
  writer.join();
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(color->num_rows(), initial_rows + kWrites);
}

}  // namespace
}  // namespace kwsdbg
