#include "storage/schema.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

Schema MakeSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"cost", DataType::kDouble},
                 {"note", DataType::kString}});
}

TEST(SchemaTest, ColumnAccess) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.column(1).name, "name");
  EXPECT_EQ(s.column(2).type, DataType::kDouble);
}

TEST(SchemaTest, ColumnIndexByName) {
  Schema s = MakeSchema();
  ASSERT_TRUE(s.ColumnIndex("cost").ok());
  EXPECT_EQ(*s.ColumnIndex("cost"), 2u);
  EXPECT_FALSE(s.ColumnIndex("missing").ok());
  EXPECT_EQ(s.ColumnIndex("missing").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, HasColumn) {
  Schema s = MakeSchema();
  EXPECT_TRUE(s.HasColumn("id"));
  EXPECT_FALSE(s.HasColumn("Id"));  // case sensitive
}

TEST(SchemaTest, TextColumnIndices) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.TextColumnIndices(), (std::vector<size_t>{1, 3}));
  Schema no_text({{"a", DataType::kInt64}});
  EXPECT_TRUE(no_text.TextColumnIndices().empty());
}

TEST(SchemaTest, ToStringFormat) {
  Schema s({{"id", DataType::kInt64}, {"name", DataType::kString}});
  EXPECT_EQ(s.ToString(), "id:INT, name:TEXT");
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(MakeSchema(), MakeSchema());
  Schema other({{"id", DataType::kInt64}});
  EXPECT_FALSE(MakeSchema() == other);
}

TEST(SchemaDeathTest, DuplicateColumnNameAborts) {
  EXPECT_DEATH(
      Schema({{"x", DataType::kInt64}, {"x", DataType::kString}}),
      "duplicate column");
}

}  // namespace
}  // namespace kwsdbg
