// Live-write semantics at the storage layer: tombstone deletes, tail
// appends on spilled tables, compaction remaps, FlatRowIndex in-place
// patches (Lookup-parity with a from-scratch rebuild), and the LiveMutator
// end-to-end path including rollback and auto-compaction.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "service/live_mutator.h"
#include "sql/flat_row_index.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/disk_manager.h"
#include "storage/table.h"
#include "text/inverted_index.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"cost", DataType::kDouble}});
}

void Fill(Table* t, size_t n, const std::string& prefix) {
  for (size_t i = 0; i < n; ++i) {
    t->AppendRowUnchecked({Value(static_cast<int64_t>(i)),
                           Value(prefix + "_" + std::to_string(i)),
                           Value(static_cast<double>(i) * 1.5)});
  }
}

// ---- Table tombstones, tail appends, compaction ----

TEST(MutationTest, DeleteRowTombstonesAndBlanksCells) {
  Table t("t", TestSchema());
  Fill(&t, 5, "r");
  ASSERT_TRUE(t.DeleteRow(2).ok());

  EXPECT_TRUE(t.deleted(2));
  EXPECT_FALSE(t.deleted(1));
  EXPECT_EQ(t.num_rows(), 5u);       // row ids stay stable
  EXPECT_EQ(t.live_rows(), 4u);
  EXPECT_EQ(t.num_deleted(), 1u);
  EXPECT_DOUBLE_EQ(t.deleted_fraction(), 0.2);
  for (size_t c = 0; c < 3; ++c) EXPECT_TRUE(t.at(2, c).is_null());
  EXPECT_EQ(t.at(3, 1).AsString(), "r_3");  // neighbors untouched
}

TEST(MutationTest, DeleteRowRejectsDoubleDeleteAndOutOfRange) {
  Table t("t", TestSchema());
  Fill(&t, 3, "r");
  ASSERT_TRUE(t.DeleteRow(1).ok());
  EXPECT_FALSE(t.DeleteRow(1).ok());  // already tombstoned
  EXPECT_FALSE(t.DeleteRow(3).ok());  // out of range
  EXPECT_EQ(t.num_deleted(), 1u);
}

TEST(MutationTest, SetValueRejectsTombstonedRow) {
  Table t("t", TestSchema());
  Fill(&t, 3, "r");
  ASSERT_TRUE(t.DeleteRow(0).ok());
  EXPECT_FALSE(t.SetValue(0, 1, Value(std::string("ghost"))).ok());
}

TEST(MutationTest, AppendRowValidatesSchema) {
  Table t("t", TestSchema());
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1})}).ok());  // arity
  EXPECT_FALSE(
      t.AppendRow({Value("x"), Value("y"), Value(1.0)}).ok());  // type
  EXPECT_TRUE(
      t.AppendRow({Value(int64_t{1}), Value(), Value(2.0)}).ok());  // NULL ok
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(MutationTest, CompactRenumbersSurvivorsAndReturnsRemap) {
  Table t("t", TestSchema());
  Fill(&t, 6, "r");
  ASSERT_TRUE(t.DeleteRow(1).ok());
  ASSERT_TRUE(t.DeleteRow(4).ok());
  const uint64_t epoch_before = t.data_epoch();

  auto remap = t.Compact();
  ASSERT_TRUE(remap.ok());
  const std::vector<uint32_t> expected = {0, kDeletedRow, 1,
                                          2, kDeletedRow, 3};
  EXPECT_EQ(*remap, expected);
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_deleted(), 0u);
  EXPECT_EQ(t.at(1, 1).AsString(), "r_2");  // survivors dense, in order
  EXPECT_EQ(t.at(3, 1).AsString(), "r_5");
  EXPECT_GT(t.data_epoch(), epoch_before);  // compaction bumps the epoch
}

TEST(MutationTest, SpilledTableTailAppendDeleteAndCompact) {
  auto disk = DiskManager::CreateTemp("", 512);
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 16);
  Table t("t", TestSchema());
  Fill(&t, 50, "r");
  ASSERT_TRUE(t.Spill(&pool, disk->get()).ok());

  // Appends land in the resident tail after the extents.
  ASSERT_TRUE(
      t.AppendRow({Value(int64_t{50}), Value("tail_50"), Value(0.0)}).ok());
  ASSERT_TRUE(
      t.AppendRow({Value(int64_t{51}), Value("tail_51"), Value(0.0)}).ok());
  EXPECT_EQ(t.num_rows(), 52u);
  EXPECT_EQ(t.at(51, 1).AsString(), "tail_51");

  // Deletes work in the extents and in the tail.
  ASSERT_TRUE(t.DeleteRow(7).ok());
  ASSERT_TRUE(t.DeleteRow(50).ok());
  EXPECT_TRUE(t.at(7, 1).is_null());
  EXPECT_TRUE(t.at(50, 1).is_null());
  EXPECT_EQ(t.live_rows(), 50u);

  // Compact re-packs the survivors into fresh extents.
  auto remap = t.Compact();
  ASSERT_TRUE(remap.ok());
  EXPECT_EQ(t.num_rows(), 50u);
  EXPECT_EQ((*remap)[7], kDeletedRow);
  EXPECT_EQ((*remap)[8], 7u);
  EXPECT_EQ((*remap)[51], 49u);
  EXPECT_EQ(t.at(7, 1).AsString(), "r_8");
  EXPECT_EQ(t.at(49, 1).AsString(), "tail_51");
}

// ---- FlatRowIndex patch parity ----

// Lookup-parity oracle: a patched index must answer every probe exactly
// like an index built from scratch over the current table state. Layout
// (bucket order, arena packing) may legitimately differ.
void ExpectLookupParity(const FlatRowIndex& patched, const Table& t,
                        size_t column) {
  const FlatRowIndex fresh = FlatRowIndex::Build(t, column);
  ASSERT_EQ(patched.num_keys(), fresh.num_keys());
  for (size_t row = 0; row < t.num_rows(); ++row) {
    const Value& v = t.at(row, column);
    if (v.is_null()) continue;
    const RowSpan a = patched.Lookup(v);
    const RowSpan b = fresh.Lookup(v);
    ASSERT_EQ(a.size(), b.size()) << "row " << row;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(MutationTest, FlatIndexApplyInsertMatchesRebuild) {
  Table t("t", TestSchema());
  Fill(&t, 40, "r");
  FlatRowIndex idx = FlatRowIndex::Build(t, 1);

  // Duplicate an existing key (run extension) and add fresh keys (possibly
  // forcing a rehash as distinct keys grow past the initial capacity).
  for (int i = 0; i < 100; ++i) {
    const bool dup = (i % 3 == 0);
    const std::string name =
        dup ? "r_5" : "new_" + std::to_string(i);
    ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(40 + i)),
                             Value(name), Value(0.0)})
                    .ok());
    idx.ApplyInsert(static_cast<uint32_t>(t.num_rows() - 1),
                    t.at(t.num_rows() - 1, 1));
  }
  ExpectLookupParity(idx, t, 1);
}

TEST(MutationTest, FlatIndexApplyDeleteMatchesRebuildEvenAfterBlanking) {
  Table t("t", TestSchema());
  Fill(&t, 30, "r");
  // Give one key a long run to exercise the in-run binary search.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(100 + i)),
                             Value(std::string("dup")), Value(0.0)})
                    .ok());
  }
  FlatRowIndex idx = FlatRowIndex::Build(t, 1);

  // Delete from the middle of the dup run, from a singleton run, and a
  // never-indexed value. The cells are blanked FIRST, as DeleteRow does —
  // ApplyDelete must locate the row from (old_value, row) alone.
  const Value old_dup = t.at(34, 1);
  ASSERT_TRUE(t.DeleteRow(34).ok());
  EXPECT_TRUE(idx.ApplyDelete(34, old_dup));
  const Value old_single = t.at(3, 1);
  ASSERT_TRUE(t.DeleteRow(3).ok());
  EXPECT_TRUE(idx.ApplyDelete(3, old_single));
  EXPECT_FALSE(idx.ApplyDelete(3, Value(std::string("absent"))));

  // Emptied singleton runs leave a bucket tombstone; probes for other keys
  // must still traverse the chain.
  ExpectLookupParity(idx, t, 1);
}

TEST(MutationTest, FlatIndexChurnCompactsArenaAndStaysExact) {
  Table t("t", TestSchema());
  Fill(&t, 16, "r");
  FlatRowIndex idx = FlatRowIndex::Build(t, 1);

  // Churn: grow runs (relocations leave arena garbage), then delete enough
  // to cross the compaction threshold, repeatedly.
  uint32_t next_id = 16;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 8; ++i) {
      const std::string name = "r_" + std::to_string(i);  // extend old runs
      ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(next_id)),
                               Value(name), Value(0.0)})
                      .ok());
      idx.ApplyInsert(next_id, t.at(next_id, 1));
      ++next_id;
    }
    for (uint32_t row = 0; row < t.num_rows(); row += 7) {
      if (t.deleted(row)) continue;
      const Value old = t.at(row, 1);
      ASSERT_TRUE(t.DeleteRow(row).ok());
      EXPECT_TRUE(idx.ApplyDelete(row, old));
    }
  }
  ExpectLookupParity(idx, t, 1);
}

// ---- LiveMutator end-to-end ----

struct MutatorFixture {
  Database db;
  Table* products = nullptr;
  Table* reviews = nullptr;
  InvertedIndex index;
  RelationFences fences;
  VerdictCache cache;
  SharedFlatRowIndexManager tier;
  LiveMutator mutator;

  explicit MutatorFixture(MutatorOptions options = {})
      : fences(2),
        mutator(&db, &index, &fences, options) {
    auto p = db.CreateTable(
        "products", Schema({{"id", DataType::kInt64},
                            {"title", DataType::kString}}));
    auto r = db.CreateTable(
        "reviews", Schema({{"id", DataType::kInt64},
                           {"body", DataType::kString}}));
    products = *p;
    reviews = *r;
    for (int i = 0; i < 8; ++i) {
      products->AppendRowUnchecked(
          {Value(static_cast<int64_t>(i)),
           Value("widget alpha" + std::to_string(i))});
      reviews->AppendRowUnchecked(
          {Value(static_cast<int64_t>(i)),
           Value("great beta" + std::to_string(i))});
    }
    index = InvertedIndex::Build(db);
    mutator.RegisterVerdictCache(&cache);
    mutator.RegisterFlatTier(&tier);
  }
};

TEST(MutationTest, LiveMutatorInsertPatchesEverything) {
  MutatorFixture fx;
  const uint64_t epoch_before = fx.products->data_epoch();
  // Warm a flat index and seed verdicts over both relations.
  fx.tier.GetOrBuild(fx.products, 1, fx.db.epoch());
  const uint64_t bit_p = RelationFences::BitFor(fx.products->catalog_index());
  const uint64_t bit_r = RelationFences::BitFor(fx.reviews->catalog_index());
  fx.cache.Insert("P", "sig", 0, 0, true, bit_p);
  fx.cache.Insert("R", "sig", 0, 0, true, bit_r);

  ASSERT_TRUE(fx.mutator
                  .Apply(Mutation::Insert(
                      "products",
                      {Value(int64_t{99}), Value(std::string("widget gamma"))}))
                  .ok());

  EXPECT_EQ(fx.products->num_rows(), 9u);
  EXPECT_GT(fx.products->data_epoch(), epoch_before);
  EXPECT_TRUE(fx.index.TableContains("gamma", "products"));
  // Partial invalidation: the products verdict died, the reviews one lives.
  EXPECT_FALSE(fx.cache.Lookup("P", "sig", 0, 0).has_value());
  EXPECT_TRUE(fx.cache.Lookup("R", "sig", 0, 0).has_value());
  // The flat index was patched in place and restamped, not dropped.
  EXPECT_EQ(fx.tier.num_indexes(), 1u);
  const FlatRowIndex& idx =
      fx.tier.GetOrBuild(fx.products, 1, fx.db.epoch());
  EXPECT_EQ(idx.Lookup(Value(std::string("widget gamma"))).size(), 1u);

  const MutationStats& stats = fx.mutator.stats();
  EXPECT_EQ(stats.mutations_applied.load(), 1u);
  EXPECT_GT(stats.index_patches.load(), 0u);
  EXPECT_EQ(stats.partial_evictions.load(), 1u);
}

TEST(MutationTest, LiveMutatorDeleteAndUpdateKeepIndexParity) {
  MutatorFixture fx;
  ASSERT_TRUE(fx.mutator.Apply(Mutation::Delete("reviews", 2)).ok());
  ASSERT_TRUE(fx.mutator
                  .Apply(Mutation::Update("reviews", 3, 1,
                                          Value(std::string("delta body"))))
                  .ok());

  EXPECT_TRUE(fx.reviews->deleted(2));
  EXPECT_FALSE(fx.index.TableContains("beta2", "reviews"));
  EXPECT_FALSE(fx.index.TableContains("beta3", "reviews"));
  EXPECT_TRUE(fx.index.TableContains("delta", "reviews"));

  // Rebuild-vs-incremental parity over the whole database.
  const InvertedIndex fresh = InvertedIndex::Build(fx.db);
  EXPECT_EQ(fx.index.num_postings(), fresh.num_postings());
  for (const std::string& term : fresh.Terms()) {
    EXPECT_EQ(fx.index.RowFrequency(term, "reviews"),
              fresh.RowFrequency(term, "reviews"))
        << term;
  }
}

TEST(MutationTest, LiveMutatorRejectsBadMutationsUnchanged) {
  MutatorFixture fx;
  const uint64_t epoch = fx.products->data_epoch();

  EXPECT_FALSE(fx.mutator.Apply(Mutation::Delete("products", 99)).ok());
  EXPECT_FALSE(fx.mutator.Apply(Mutation::Delete("nosuch", 0)).ok());
  EXPECT_FALSE(
      fx.mutator.Apply(Mutation::Insert("products", {Value(int64_t{1})}))
          .ok());
  EXPECT_FALSE(fx.mutator
                   .Apply(Mutation::Update("products", 0, 1,
                                           Value(int64_t{5})))  // type clash
                   .ok());

  EXPECT_EQ(fx.products->num_rows(), 8u);
  EXPECT_EQ(fx.products->data_epoch(), epoch);  // nothing changed
  EXPECT_EQ(fx.mutator.stats().mutations_applied.load(), 0u);
}

TEST(MutationTest, LiveMutatorFaultPointFailsBeforeMutating) {
  MutatorFixture fx;
  ScopedFaultInjection faults("storage.mutation.apply=unavailable,times=1");

  Status s = fx.mutator.Apply(Mutation::Delete("products", 0));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(fx.products->deleted(0));  // fault fired before any change
  EXPECT_TRUE(fx.index.TableContains("alpha0", "products"));
  EXPECT_EQ(fx.mutator.stats().mutations_applied.load(), 0u);

  // The schedule is exhausted; the same mutation now applies.
  ASSERT_TRUE(fx.mutator.Apply(Mutation::Delete("products", 0)).ok());
  EXPECT_FALSE(fx.index.TableContains("alpha0", "products"));
}

TEST(MutationTest, LiveMutatorAutoCompactsAndRemapsPostings) {
  MutatorOptions options;
  options.auto_compact_fraction = 0.3;
  MutatorFixture fx(options);

  // Delete 3 of 8 rows: the third delete crosses the 30% threshold.
  ASSERT_TRUE(fx.mutator.Apply(Mutation::Delete("products", 0)).ok());
  ASSERT_TRUE(fx.mutator.Apply(Mutation::Delete("products", 4)).ok());
  EXPECT_EQ(fx.mutator.stats().compactions.load(), 0u);
  ASSERT_TRUE(fx.mutator.Apply(Mutation::Delete("products", 6)).ok());

  EXPECT_EQ(fx.mutator.stats().compactions.load(), 1u);
  EXPECT_EQ(fx.products->num_rows(), 5u);
  EXPECT_EQ(fx.products->num_deleted(), 0u);

  // Postings were remapped to the post-compaction row ids: parity holds.
  const InvertedIndex fresh = InvertedIndex::Build(fx.db);
  for (const std::string& term : fresh.Terms()) {
    const std::vector<Posting>& live = fx.index.PostingsFor(term);
    const std::vector<Posting>& want = fresh.PostingsFor(term);
    ASSERT_EQ(live.size(), want.size()) << term;
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(live[i].row, want[i].row) << term;
    }
  }
}

}  // namespace
}  // namespace kwsdbg
