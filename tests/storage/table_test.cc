#include "storage/table.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

Table MakeTable() {
  return Table("t", Schema({{"id", DataType::kInt64},
                            {"name", DataType::kString},
                            {"cost", DataType::kDouble}}));
}

TEST(TableTest, AppendAndRead) {
  Table t = MakeTable();
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("a"), Value(1.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value("b"), Value(2.5)}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 1).AsString(), "a");
  EXPECT_EQ(t.at(1, 0).AsInt(), 2);
}

TEST(TableTest, ArityMismatchRejected) {
  Table t = MakeTable();
  Status s = t.AppendRow({Value(int64_t{1})});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, TypeMismatchRejected) {
  Table t = MakeTable();
  Status s = t.AppendRow({Value("oops"), Value("a"), Value(1.0)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, NullAllowedAnywhere) {
  Table t = MakeTable();
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null(), Value::Null()}).ok());
  EXPECT_TRUE(t.at(0, 0).is_null());
}

TEST(TableTest, IntAcceptedInDoubleColumn) {
  Table t = MakeTable();
  EXPECT_TRUE(
      t.AppendRow({Value(int64_t{1}), Value("a"), Value(int64_t{3})}).ok());
}

TEST(TableTest, ValueByName) {
  Table t = MakeTable();
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("a"), Value(1.5)}).ok());
  auto v = t.ValueByName(0, "name");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a");
  EXPECT_FALSE(t.ValueByName(0, "nope").ok());
  EXPECT_EQ(t.ValueByName(5, "name").status().code(), StatusCode::kOutOfRange);
}

TEST(TableTest, EstimateBytesGrows) {
  Table t = MakeTable();
  size_t empty = t.EstimateBytes();
  ASSERT_TRUE(
      t.AppendRow({Value(int64_t{1}), Value("hello world"), Value(1.0)}).ok());
  EXPECT_GT(t.EstimateBytes(), empty);
}

}  // namespace
}  // namespace kwsdbg
