// WAL writer/reader contract: round-trip of every record kind, implicit
// seq numbering over base_seq, torn-tail tolerance vs mid-log kDataLoss,
// checkpoint-boundary truncation, the durable_seq semantics of the three
// fsync policies, and fault-point propagation.
#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"

namespace kwsdbg {
namespace {

std::string TestWalPath(const std::string& tag) {
  const std::string path = testing::TempDir() + "/kwsdbg_wal_" + tag + ".log";
  std::remove(path.c_str());
  return path;
}

std::string FileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void OverwriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

TEST(WalTest, MissingFileReadsAsEmpty) {
  auto replay = ReadWal(TestWalPath("missing"));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->exists);
  EXPECT_TRUE(replay->records.empty());
}

TEST(WalTest, RoundTripsEveryRecordKind) {
  const std::string path = TestWalPath("roundtrip");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    WalWriter& wal = **writer;
    uint64_t seq = 0;
    ASSERT_TRUE(wal.AppendMutation(
                       Mutation::Insert("Color", {Value(int64_t{7}),
                                                  Value("red"), Value()}),
                       &seq)
                    .ok());
    EXPECT_EQ(seq, 1u);
    ASSERT_TRUE(wal.AppendMutation(
                       Mutation::Update("Color", 3, 1, Value("crimson")),
                       &seq)
                    .ok());
    EXPECT_EQ(seq, 2u);
    ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("Item", 5), &seq).ok());
    EXPECT_EQ(seq, 3u);
    ASSERT_TRUE(wal.AppendCompact("Item", &seq).ok());
    EXPECT_EQ(seq, 4u);
    // Every-record policy: each append is fsynced before it returns.
    EXPECT_EQ(wal.durable_seq(), 4u);
    EXPECT_EQ(wal.next_seq(), 5u);
    EXPECT_EQ(wal.stats().records_appended, 4u);
    EXPECT_EQ(wal.stats().fsyncs, 4u);
  }

  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->exists);
  EXPECT_EQ(replay->base_seq, 0u);
  EXPECT_EQ(replay->torn_tail_bytes, 0u);
  ASSERT_EQ(replay->records.size(), 4u);

  const WalRecord& insert = replay->records[0];
  EXPECT_EQ(insert.kind, WalRecord::Kind::kMutation);
  EXPECT_EQ(insert.seq, 1u);
  EXPECT_EQ(insert.mutation.kind, Mutation::Kind::kInsert);
  EXPECT_EQ(insert.mutation.table, "Color");
  ASSERT_EQ(insert.mutation.row.size(), 3u);
  EXPECT_EQ(insert.mutation.row[0].AsInt(), 7);
  EXPECT_EQ(insert.mutation.row[1].AsString(), "red");
  EXPECT_TRUE(insert.mutation.row[2].is_null());

  const WalRecord& update = replay->records[1];
  EXPECT_EQ(update.mutation.kind, Mutation::Kind::kUpdate);
  EXPECT_EQ(update.mutation.row_id, 3u);
  EXPECT_EQ(update.mutation.column, 1u);
  EXPECT_EQ(update.mutation.value.AsString(), "crimson");

  const WalRecord& del = replay->records[2];
  EXPECT_EQ(del.mutation.kind, Mutation::Kind::kDelete);
  EXPECT_EQ(del.mutation.table, "Item");
  EXPECT_EQ(del.mutation.row_id, 5u);

  const WalRecord& compact = replay->records[3];
  EXPECT_EQ(compact.kind, WalRecord::Kind::kCompact);
  EXPECT_EQ(compact.seq, 4u);
  EXPECT_EQ(compact.table, "Item");
}

TEST(WalTest, TornTailIsToleratedAndChoppedOnReopen) {
  const std::string path = TestWalPath("torn");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 1)).ok());
    ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 2)).ok());
  }
  const std::string intact = FileContents(path);

  // A crash mid-append leaves a partial frame: simulate by appending the
  // first few bytes of a fake frame.
  OverwriteFile(path, intact + std::string("\x20\x00\x00", 3));
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->torn_tail_bytes, 3u);

  // Reopening chops the torn bytes so the next append lands on a frame
  // boundary and the log reads back whole.
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->next_seq(), 3u);
    ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 3)).ok());
  }
  replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->torn_tail_bytes, 0u);
  EXPECT_EQ(replay->records[2].mutation.row_id, 3u);
}

TEST(WalTest, MidLogCorruptionIsDataLoss) {
  const std::string path = TestWalPath("corrupt");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (size_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", i)).ok());
    }
  }
  std::string contents = FileContents(path);
  // Flip one payload byte inside the FIRST frame (header is 16 bytes, frame
  // header 8): a bad frame with valid frames after it is rot, not a torn
  // tail, and must not silently resurrect a prefix.
  contents[16 + 8] ^= 0x40;
  OverwriteFile(path, contents);

  auto replay = ReadWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);

  // And the writer refuses to adopt it, for the same reason.
  auto writer = WalWriter::Open(path);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, TruncateRestartsAtCheckpointBoundary) {
  const std::string path = TestWalPath("truncate");
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  WalWriter& wal = **writer;
  for (size_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("T", i)).ok());
  }

  // Partial truncation would need a frame-level rewrite; the checkpoint
  // protocol only ever truncates at the fully-covered boundary.
  EXPECT_EQ(wal.Truncate(3).code(), StatusCode::kUnimplemented);

  ASSERT_TRUE(wal.Truncate(5).ok());
  EXPECT_EQ(wal.next_seq(), 6u);
  EXPECT_EQ(wal.stats().truncations, 1u);
  uint64_t seq = 0;
  ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("T", 99), &seq).ok());
  EXPECT_EQ(seq, 6u);

  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->base_seq, 5u);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].seq, 6u);
  EXPECT_EQ(replay->records[0].mutation.row_id, 99u);
}

TEST(WalTest, TruncateIsAtomicAndSurvivesInjectedFaults) {
  const std::string path = TestWalPath("truncate_atomic");
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  WalWriter& wal = **writer;
  for (size_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("T", i)).ok());
  }

  // Fault at truncate entry: nothing changed — the log still holds every
  // record.
  {
    ScopedFaultInjection faults("storage.wal.truncate=unavailable,times=1");
    EXPECT_EQ(wal.Truncate(3).code(), StatusCode::kUnavailable);
  }
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records.size(), 3u);

  // Fault between staging the replacement log and renaming it into place:
  // the live log is still the old one and the stage file was cleaned up.
  {
    ScopedFaultInjection faults("storage.wal.truncate=unavailable,after=1");
    EXPECT_EQ(wal.Truncate(3).code(), StatusCode::kUnavailable);
  }
  replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records.size(), 3u);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // A clean truncate swaps the replacement in, leaves no stage file, and
  // the writer keeps appending above the boundary.
  ASSERT_TRUE(wal.Truncate(3).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  uint64_t seq = 0;
  ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("T", 9), &seq).ok());
  EXPECT_EQ(seq, 4u);
  replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->base_seq, 3u);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].mutation.row_id, 9u);
}

TEST(WalTest, OpenWithCoveredSeqBasesFreshLog) {
  const std::string path = TestWalPath("covered_fresh");
  {
    auto writer = WalWriter::Open(path, WalOptions{}, /*covered_seq=*/7);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->next_seq(), 8u);
    uint64_t seq = 0;
    ASSERT_TRUE(
        (*writer)->AppendMutation(Mutation::Delete("T", 1), &seq).ok());
    EXPECT_EQ(seq, 8u);
  }
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->base_seq, 7u);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].seq, 8u);
}

TEST(WalTest, StubLogRecreatesAtCoveredSeq) {
  // A headerless stub must not recreate at base 0 when a checkpoint covers
  // seq 6: post-recovery appends would take seqs 1..6 that the next
  // recovery silently skips as covered — lost acknowledged writes.
  const std::string path = TestWalPath("stub_covered");
  OverwriteFile(path, "KW");
  auto writer = WalWriter::Open(path, WalOptions{}, /*covered_seq=*/6);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->next_seq(), 7u);
}

TEST(WalTest, OpenRestartsWhollySupersededLog) {
  const std::string path = TestWalPath("superseded");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (size_t i = 1; i <= 5; ++i) {
      ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", i)).ok());
    }
  }
  // A checkpoint covering seq 9 supersedes every surviving frame (seqs
  // 1-5): a crash ate an unfsynced suffix after the snapshot made it
  // durable. The log must restart at the covered boundary — adopting it
  // as-is would hand out seqs 6..9 that recovery skips as covered.
  auto writer = WalWriter::Open(path, WalOptions{}, /*covered_seq=*/9);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->next_seq(), 10u);
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->base_seq, 9u);
  EXPECT_TRUE(replay->records.empty());
}

TEST(WalTest, OpenAdoptsLogEndingExactlyAtCoveredSeq) {
  // Crash after WriteCheckpoint(covered=5) but before truncation, with all
  // five frames durable: the log is fully covered but not stale — adopt it
  // so the next append gets seq 6.
  const std::string path = TestWalPath("adopt_at_covered");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (size_t i = 1; i <= 5; ++i) {
      ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", i)).ok());
    }
  }
  auto writer = WalWriter::Open(path, WalOptions{}, /*covered_seq=*/5);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->next_seq(), 6u);
}

TEST(WalTest, OpenRejectsLogAheadOfCheckpoint) {
  const std::string path = TestWalPath("ahead");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 1)).ok());
    ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 2)).ok());
    ASSERT_TRUE((*writer)->Truncate(2).ok());  // base_seq = 2.
  }
  // A log starting above the covered seq means the checkpoint that
  // justified its truncation vanished: records 1..2 are gone.
  auto writer = WalWriter::Open(path, WalOptions{}, /*covered_seq=*/1);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, OversizedPayloadIsRejectedBeforeBuffering) {
  // An oversized frame would be written and acknowledged, then read back
  // invalid (len > kWalMaxPayload) — a torn tail or kDataLoss — so the
  // append must fail typed up front instead.
  const std::string path = TestWalPath("oversized");
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  const Status s =
      (*writer)->AppendPayload(std::string(kWalMaxPayload + 1, 'x'));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*writer)->stats().records_appended, 0u);
  // The rejected payload consumed no seq and corrupted nothing.
  uint64_t seq = 0;
  ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 1), &seq).ok());
  EXPECT_EQ(seq, 1u);
  auto replay = ReadWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->records.size(), 1u);
}

TEST(WalTest, GroupCommitAcknowledgesBeforeDurability) {
  const std::string path = TestWalPath("group");
  WalOptions options;
  options.fsync_policy = FsyncPolicy::kGroupCommit;
  options.group_commit_records = 4;
  auto writer = WalWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  WalWriter& wal = **writer;

  for (size_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("T", i)).ok());
  }
  // Three appends are acknowledged but the window has not filled: nothing
  // is durable yet. This is the window the zero-loss gate must exclude.
  EXPECT_EQ(wal.durable_seq(), 0u);

  ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("T", 4)).ok());
  EXPECT_EQ(wal.durable_seq(), 4u);  // Window filled -> flush + fsync.

  ASSERT_TRUE(wal.AppendMutation(Mutation::Delete("T", 5)).ok());
  EXPECT_EQ(wal.durable_seq(), 4u);
  ASSERT_TRUE(wal.Sync().ok());  // Explicit sync drains the buffer.
  EXPECT_EQ(wal.durable_seq(), 5u);
}

TEST(WalTest, OffPolicyNeverFsyncs) {
  const std::string path = TestWalPath("off");
  WalOptions options;
  options.fsync_policy = FsyncPolicy::kOff;
  auto writer = WalWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  for (size_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", i)).ok());
  }
  EXPECT_EQ((*writer)->durable_seq(), 0u);
  EXPECT_EQ((*writer)->stats().fsyncs, 0u);
}

TEST(WalTest, ParseFsyncPolicyNames) {
  EXPECT_EQ(*ParseFsyncPolicy("every"), FsyncPolicy::kEveryRecord);
  EXPECT_EQ(*ParseFsyncPolicy("group"), FsyncPolicy::kGroupCommit);
  EXPECT_EQ(*ParseFsyncPolicy("off"), FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_STREQ(FsyncPolicyToString(FsyncPolicy::kGroupCommit), "group");
}

TEST(WalTest, AppendFaultPropagatesTyped) {
  const std::string path = TestWalPath("fault_append");
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ScopedFaultInjection faults("storage.wal.append=unavailable,times=1");
  Status s = (*writer)->AppendMutation(Mutation::Delete("T", 1));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // The schedule is exhausted (times=1); the next append succeeds and the
  // failed one consumed no seq.
  uint64_t seq = 0;
  ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 2), &seq).ok());
  EXPECT_EQ(seq, 1u);
}

TEST(WalTest, ReplayFaultPropagatesTyped) {
  const std::string path = TestWalPath("fault_replay");
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendMutation(Mutation::Delete("T", 1)).ok());
  }
  ScopedFaultInjection faults("storage.wal.replay=unavailable,times=1");
  auto replay = ReadWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace kwsdbg
