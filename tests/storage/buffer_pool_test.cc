#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/disk_manager.h"

namespace kwsdbg {
namespace {

std::unique_ptr<DiskManager> TempDisk(size_t page_size = 512) {
  auto disk = DiskManager::CreateTemp("", page_size);
  EXPECT_TRUE(disk.ok()) << disk.status().ToString();
  return std::move(disk).value();
}

TEST(PageCodecTest, RoundTripsAllValueKinds) {
  std::vector<Tuple> rows;
  rows.push_back({Value(int64_t{-42}), Value::Null(), Value(3.25)});
  rows.push_back({Value("short"), Value(std::string(300, 'x'))});
  rows.push_back({});  // empty tuple
  rows.push_back({Value("")});

  std::string buf;
  EncodeRows(rows, &buf);
  EXPECT_EQ(buf.size(), EncodedRowsSize(rows));

  std::vector<Tuple> out;
  ASSERT_TRUE(DecodeRows(buf.data(), buf.size(), &out).ok());
  ASSERT_EQ(out.size(), rows.size());
  EXPECT_EQ(out[0][0].AsInt(), -42);
  EXPECT_TRUE(out[0][1].is_null());
  EXPECT_EQ(out[0][2].AsDouble(), 3.25);
  EXPECT_EQ(out[1][0].AsString(), "short");
  EXPECT_EQ(out[1][1].AsString(), std::string(300, 'x'));
  EXPECT_TRUE(out[2].empty());
  EXPECT_EQ(out[3][0].AsString(), "");
}

TEST(PageCodecTest, RejectsTruncatedInput) {
  std::vector<Tuple> rows;
  rows.push_back({Value(int64_t{7}), Value("payload string here")});
  std::string buf;
  EncodeRows(rows, &buf);
  std::vector<Tuple> out;
  EXPECT_FALSE(DecodeRows(buf.data(), buf.size() / 2, &out).ok());
}

// Writes one single-page extent holding `rows` and returns its page id.
uint64_t WriteExtent(DiskManager* disk, const std::vector<Tuple>& rows) {
  auto page = disk->AllocatePages(1);
  EXPECT_TRUE(page.ok());
  std::string buf;
  EncodeRows(rows, &buf);
  buf.resize(disk->page_size(), '\0');
  EXPECT_TRUE(disk->WritePages(*page, 1, buf.data()).ok());
  return *page;
}

std::vector<Tuple> OneRow(int64_t v) {
  std::vector<Tuple> rows;
  rows.push_back({Value(v)});
  return rows;
}

TEST(BufferPoolTest, FetchDecodesAndCaches) {
  auto disk = TempDisk();
  uint64_t p = WriteExtent(disk.get(), OneRow(11));
  BufferPool pool(disk.get(), 16);

  auto rows = pool.Fetch(p, 1, nullptr);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ((*rows)->size(), 1u);
  EXPECT_EQ((*(*rows))[0][0].AsInt(), 11);
  EXPECT_EQ(pool.stats().page_misses, 1u);

  // Second fetch is a hit: no new disk read.
  size_t reads_before = disk->stats().page_reads;
  ASSERT_TRUE(pool.Fetch(p, 1, nullptr).ok());
  EXPECT_EQ(pool.stats().page_hits, 1u);
  EXPECT_EQ(disk->stats().page_reads, reads_before);
}

TEST(BufferPoolTest, LruEvictsOldestUnpinned) {
  auto disk = TempDisk();
  BufferPool pool(disk.get(), 16);  // kMinCapacity clamp keeps this at 16
  std::vector<uint64_t> pages;
  for (int i = 0; i < 17; ++i) {
    pages.push_back(WriteExtent(disk.get(), OneRow(i)));
  }
  for (uint64_t p : pages) ASSERT_TRUE(pool.Fetch(p, 1, nullptr).ok());
  // 17 extents through 16 frames: exactly one eviction, of the first page.
  EXPECT_EQ(pool.stats().page_evictions, 1u);
  EXPECT_EQ(pool.num_frames(), 16u);

  size_t misses = pool.stats().page_misses;
  ASSERT_TRUE(pool.Fetch(pages[0], 1, nullptr).ok());
  EXPECT_EQ(pool.stats().page_misses, misses + 1);  // was evicted
  ASSERT_TRUE(pool.Fetch(pages[16], 1, nullptr).ok());
  EXPECT_EQ(pool.stats().page_misses, misses + 1);  // still resident
}

TEST(BufferPoolTest, ReferenceStaysValidAcrossCapacityMinusOneFetches) {
  auto disk = TempDisk();
  BufferPool pool(disk.get(), 16);
  uint64_t first = WriteExtent(disk.get(), OneRow(99));
  auto rows = pool.Fetch(first, 1, nullptr);
  ASSERT_TRUE(rows.ok());
  const std::vector<Tuple>* held = *rows;
  for (int i = 0; i < 15; ++i) {
    uint64_t p = WriteExtent(disk.get(), OneRow(i));
    ASSERT_TRUE(pool.Fetch(p, 1, nullptr).ok());
  }
  // 15 = capacity - 1 distinct fetches later, the reference still reads 99.
  EXPECT_EQ((*held)[0][0].AsInt(), 99);
}

TEST(BufferPoolTest, PinnedFramesSurviveEvictionPressure) {
  auto disk = TempDisk();
  BufferPool pool(disk.get(), 16);
  uint64_t keep = WriteExtent(disk.get(), OneRow(1234));
  ASSERT_TRUE(pool.Fetch(keep, 1, nullptr).ok());
  pool.Pin(keep);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        pool.Fetch(WriteExtent(disk.get(), OneRow(i)), 1, nullptr).ok());
  }
  size_t misses = pool.stats().page_misses;
  auto rows = pool.Fetch(keep, 1, nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(pool.stats().page_misses, misses);  // never left the pool
  EXPECT_EQ((*(*rows))[0][0].AsInt(), 1234);
  pool.Unpin(keep);
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  auto disk = TempDisk();
  BufferPool pool(disk.get(), 16);
  for (int i = 0; i < 16; ++i) {
    uint64_t p = WriteExtent(disk.get(), OneRow(i));
    ASSERT_TRUE(pool.Fetch(p, 1, nullptr).ok());
    pool.Pin(p);
  }
  uint64_t extra = WriteExtent(disk.get(), OneRow(-1));
  auto rows = pool.Fetch(extra, 1, nullptr);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kResourceExhausted);
}

// PageWriter that records write-backs, re-encoding in place.
struct RecordingWriter : public PageWriter {
  DiskManager* disk;
  size_t calls = 0;
  explicit RecordingWriter(DiskManager* d) : disk(d) {}
  Status WriteBack(uint64_t first_page,
                   const std::vector<Tuple>& rows) override {
    ++calls;
    std::string buf;
    EncodeRows(rows, &buf);
    buf.resize(disk->page_size(), '\0');
    return disk->WritePages(first_page, 1, buf.data());
  }
};

TEST(BufferPoolTest, DirtyFrameWritesBackOnEviction) {
  auto disk = TempDisk();
  RecordingWriter writer(disk.get());
  BufferPool pool(disk.get(), 16);
  uint64_t p = WriteExtent(disk.get(), OneRow(5));
  auto rows = pool.FetchMutable(p, 1, &writer);
  ASSERT_TRUE(rows.ok());
  (*(*rows))[0][0] = Value(int64_t{500});

  // Push it out of the pool.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        pool.Fetch(WriteExtent(disk.get(), OneRow(i)), 1, nullptr).ok());
  }
  EXPECT_GE(writer.calls, 1u);
  EXPECT_GE(pool.stats().write_backs, 1u);

  // Re-reading decodes the written-back value.
  auto again = pool.Fetch(p, 1, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*(*again))[0][0].AsInt(), 500);
}

TEST(BufferPoolTest, FlushAllWritesDirtyFramesOnce) {
  auto disk = TempDisk();
  RecordingWriter writer(disk.get());
  BufferPool pool(disk.get(), 16);
  uint64_t p = WriteExtent(disk.get(), OneRow(8));
  auto rows = pool.FetchMutable(p, 1, &writer);
  ASSERT_TRUE(rows.ok());
  (*(*rows))[0][0] = Value(int64_t{80});
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(writer.calls, 1u);
  ASSERT_TRUE(pool.FlushAll().ok());  // now clean: no second write
  EXPECT_EQ(writer.calls, 1u);

  pool.DropAll();
  EXPECT_EQ(pool.num_frames(), 0u);
  auto again = pool.Fetch(p, 1, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*(*again))[0][0].AsInt(), 80);
}

TEST(DiskManagerTest, SinglePagesRecycleThroughFreeList) {
  auto disk = TempDisk();
  auto a = disk->AllocatePages(1);
  auto b = disk->AllocatePages(1);
  ASSERT_TRUE(a.ok() && b.ok());
  disk->FreePages(*a, 1);
  auto c = disk->AllocatePages(1);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // recycled, file did not grow
  EXPECT_EQ(disk->stats().pages_freed, 1u);
}

TEST(DiskManagerTest, MultiPageExtentsAreContiguousAtEof) {
  auto disk = TempDisk();
  auto a = disk->AllocatePages(1);
  ASSERT_TRUE(a.ok());
  disk->FreePages(*a, 1);  // a free single page must not split an extent
  uint64_t eof = disk->num_pages();
  auto ext = disk->AllocatePages(3);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(*ext, eof);

  std::string out(3 * disk->page_size(), 'q');
  ASSERT_TRUE(disk->WritePages(*ext, 3, out.data()).ok());
  std::string in(3 * disk->page_size(), '\0');
  ASSERT_TRUE(disk->ReadPages(*ext, 3, in.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(DiskManagerTest, ShortReadsZeroFill) {
  auto disk = TempDisk();
  auto p = disk->AllocatePages(1);
  ASSERT_TRUE(p.ok());
  // Nothing written yet: the file is sparse/short at this offset.
  std::string buf(disk->page_size(), 'z');
  ASSERT_TRUE(disk->ReadPages(*p, 1, buf.data()).ok());
  EXPECT_EQ(buf, std::string(disk->page_size(), '\0'));
}

TEST(DiskManagerTest, SpillFileRemovedOnDestruction) {
  std::string path;
  {
    auto disk = TempDisk();
    path = disk->path();
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

}  // namespace
}  // namespace kwsdbg
