#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/disk_manager.h"
#include "storage/table.h"

namespace kwsdbg {
namespace {

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"cost", DataType::kDouble}});
}

void Fill(Table* t, size_t rows, const std::string& tag) {
  for (size_t i = 0; i < rows; ++i) {
    t->AppendRowUnchecked({Value(static_cast<int64_t>(i)),
                           Value(tag + "_" + std::to_string(i)),
                           Value(0.5 * static_cast<double>(i))});
  }
}

TEST(SpillTest, SpilledReadsMatchResidentCopy) {
  auto disk = DiskManager::CreateTemp("", 512);
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 16);

  Table resident("t", TestSchema());
  Fill(&resident, 300, "row");
  Table spilled("t", TestSchema());
  Fill(&spilled, 300, "row");

  ASSERT_TRUE(spilled.Spill(&pool, disk->get()).ok());
  EXPECT_TRUE(spilled.spilled());
  EXPECT_GT(spilled.on_disk_bytes(), 0u);
  EXPECT_GT(spilled.extents().size(), 1u);  // 512B pages force many extents
  ASSERT_EQ(spilled.num_rows(), resident.num_rows());

  for (size_t r = 0; r < resident.num_rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(spilled.at(r, c) == resident.at(r, c))
          << "mismatch at (" << r << ", " << c << ")";
    }
  }
  EXPECT_GT(pool.stats().page_misses, 0u);
}

TEST(SpillTest, AppendToSpilledTableLandsInResidentTail) {
  auto disk = DiskManager::CreateTemp("", 512);
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 16);
  Table t("t", TestSchema());
  Fill(&t, 10, "r");
  ASSERT_TRUE(t.Spill(&pool, disk->get()).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("x"), Value(1.0)}).ok());
  EXPECT_EQ(t.num_rows(), 11u);
  EXPECT_EQ(t.at(10, 1).AsString(), "x");
  // Spilled rows are still served from the extents.
  EXPECT_EQ(t.at(3, 1).AsString(), "r_3");
}

TEST(SpillTest, SetValueOnSpilledTableWritesBack) {
  auto disk = DiskManager::CreateTemp("", 512);
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 16);
  Table t("t", TestSchema());
  Fill(&t, 200, "r");
  ASSERT_TRUE(t.Spill(&pool, disk->get()).ok());

  ASSERT_TRUE(t.SetValue(7, 1, Value(std::string("edited"))).ok());
  EXPECT_EQ(t.at(7, 1).AsString(), "edited");

  // Force the dirty frame out and read the row back from disk.
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.DropAll();
  EXPECT_EQ(t.at(7, 1).AsString(), "edited");
  EXPECT_EQ(t.at(7, 0).AsInt(), 7);  // neighbors in the extent intact
}

TEST(SpillTest, WriteBackGrowsExtentWhenRowNoLongerFits) {
  auto disk = DiskManager::CreateTemp("", 512);
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 16);
  Table t("t", TestSchema());
  Fill(&t, 120, "r");
  ASSERT_TRUE(t.Spill(&pool, disk->get()).ok());

  // A value far bigger than a 512-byte page cannot be rewritten in place.
  std::string huge(4000, 'H');
  ASSERT_TRUE(t.SetValue(3, 1, Value(huge)).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.DropAll();
  EXPECT_EQ(t.at(3, 1).AsString(), huge);
  // Every other row survived the extent relocation.
  EXPECT_EQ(t.at(2, 1).AsString(), "r_2");
  EXPECT_EQ(t.at(4, 1).AsString(), "r_4");
  EXPECT_GT(disk->get()->stats().pages_freed, 0u);
}

TEST(SpillTest, EstimateBytesCountsHeapStringsAndSlack) {
  // Regression for the undercounting bug: heap string payloads and container
  // slack must show up, else memory budgets spill far too little.
  Table t("t", Schema({{"s", DataType::kString}}));
  size_t base = t.EstimateBytes();

  std::string big(1 << 12, 'a');  // 4 KiB, far beyond any SSO buffer
  t.AppendRowUnchecked({Value(big)});
  size_t with_heap = t.EstimateBytes();
  EXPECT_GE(with_heap - base, big.size());  // payload is visible

  // An SSO-sized string adds a tuple + value, but no heap payload…
  Table small("t", Schema({{"s", DataType::kString}}));
  small.AppendRowUnchecked({Value(std::string("ab"))});
  // …so the heap-string table must be estimated bigger by ≥ the payload gap.
  EXPECT_GE(with_heap - small.EstimateBytes(), big.size() - 64);

  // Known-layout fixture: N heap strings of known capacity give a floor.
  Table fixture("t", Schema({{"s", DataType::kString}}));
  constexpr size_t kRows = 50;
  std::string payload(256, 'p');
  for (size_t i = 0; i < kRows; ++i) fixture.AppendRowUnchecked({Value(payload)});
  size_t floor = sizeof(Table) + kRows * (sizeof(Tuple) + sizeof(Value) + 256);
  EXPECT_GE(fixture.EstimateBytes(), floor);

  // Monotone in rows.
  size_t prev = 0;
  Table grow("t", TestSchema());
  for (int i = 0; i < 4; ++i) {
    Fill(&grow, 25, "grow");
    size_t now = grow.EstimateBytes();
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(SpillTest, ApplyMemoryBudgetSpillsLargestFirst) {
  Database db;
  auto big = db.CreateTable("big", TestSchema());
  auto small = db.CreateTable("small", TestSchema());
  ASSERT_TRUE(big.ok() && small.ok());
  Fill(*big, 2000, "big");
  Fill(*small, 20, "small");

  size_t total = db.EstimateBytes();
  SpillOptions opts;
  opts.page_size = 512;
  // Budget sized so spilling the big table alone gets under budget/2.
  ASSERT_TRUE(db.ApplyMemoryBudget(total / 4, opts).ok());
  EXPECT_TRUE((*big)->spilled());
  EXPECT_FALSE((*small)->spilled());
  EXPECT_TRUE(db.AnySpilled());

  StorageStats stats = db.storage_stats();
  EXPECT_EQ(stats.spilled_tables, 1u);
  EXPECT_GT(stats.spilled_bytes, 0u);

  // Reads flow through the pool and show up in the stats.
  EXPECT_EQ((*big)->at(1999, 1).AsString(), "big_1999");
  stats = db.storage_stats();
  EXPECT_GT(stats.page_reads, 0u);
}

TEST(SpillTest, EnvMemoryBudgetKnobs) {
  Database db;
  auto t = db.CreateTable("t", TestSchema());
  ASSERT_TRUE(t.ok());
  Fill(*t, 2000, "env");

  ::setenv("KWSDBG_MEMORY_BUDGET", "2K", 1);
  ::setenv("KWSDBG_PAGE_SIZE", "512", 1);
  Status s = db.ApplyEnvMemoryBudget();
  ::unsetenv("KWSDBG_MEMORY_BUDGET");
  ::unsetenv("KWSDBG_PAGE_SIZE");
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(db.AnySpilled());
  ASSERT_NE(db.disk(), nullptr);
  EXPECT_EQ(db.disk()->page_size(), 512u);
  EXPECT_EQ((*t)->at(0, 1).AsString(), "env_0");
}

TEST(SpillTest, EnvMemoryBudgetUnsetIsNoop) {
  Database db;
  auto t = db.CreateTable("t", TestSchema());
  ASSERT_TRUE(t.ok());
  Fill(*t, 100, "x");
  ::unsetenv("KWSDBG_MEMORY_BUDGET");
  ASSERT_TRUE(db.ApplyEnvMemoryBudget().ok());
  EXPECT_FALSE(db.AnySpilled());
}

TEST(SpillEpochTest, BumpEpochDropsFramesAndServesFreshPages) {
  Database db;
  auto t = db.CreateTable("t", TestSchema());
  ASSERT_TRUE(t.ok());
  Fill(*t, 500, "v1");
  SpillOptions opts;
  opts.page_size = 512;
  ASSERT_TRUE(db.ApplyMemoryBudget(1, opts).ok());  // spill everything
  ASSERT_TRUE((*t)->spilled());

  // Warm the pool, then mutate through the paged path.
  EXPECT_EQ((*t)->at(42, 1).AsString(), "v1_42");
  ASSERT_TRUE((*t)->SetValue(42, 1, Value(std::string("v2_42"))).ok());

  uint64_t before = db.epoch();
  db.BumpEpoch();
  EXPECT_EQ(db.epoch(), before + 1);

  // The bump flushed the dirty frame and dropped every frame: nothing stale
  // can be served, and the next read faults the fresh page image in.
  ASSERT_NE(db.buffer_pool(), nullptr);
  EXPECT_EQ(db.buffer_pool()->num_frames(), 0u);
  size_t misses = db.buffer_pool()->stats().page_misses;
  EXPECT_EQ((*t)->at(42, 1).AsString(), "v2_42");
  EXPECT_GT(db.buffer_pool()->stats().page_misses, misses);

  // Untouched rows are unchanged by the flush/drop cycle.
  EXPECT_EQ((*t)->at(41, 1).AsString(), "v1_41");
  EXPECT_EQ((*t)->at(43, 1).AsString(), "v1_43");
}

}  // namespace
}  // namespace kwsdbg
