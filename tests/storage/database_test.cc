#include "storage/database.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  auto t = db.CreateTable("users", Schema({{"id", DataType::kInt64}}));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(db.HasTable("users"));
  EXPECT_EQ(db.FindTable("users"), *t);
  ASSERT_TRUE(db.GetTable("users").ok());
  EXPECT_FALSE(db.HasTable("nope"));
  EXPECT_EQ(db.FindTable("nope"), nullptr);
  EXPECT_EQ(db.GetTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, DuplicateNameRejected) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64}})).ok());
  EXPECT_EQ(db.CreateTable("t", Schema({{"a", DataType::kInt64}}))
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, AddPrebuiltTable) {
  Database db;
  auto table =
      std::make_unique<Table>("pre", Schema({{"x", DataType::kString}}));
  ASSERT_TRUE(table->AppendRow({Value("v")}).ok());
  ASSERT_TRUE(db.AddTable(std::move(table)).ok());
  EXPECT_EQ(db.FindTable("pre")->num_rows(), 1u);
}

TEST(DatabaseTest, TableNamesPreserveCreationOrder) {
  Database db;
  ASSERT_TRUE(db.CreateTable("b", Schema({{"x", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.CreateTable("a", Schema({{"x", DataType::kInt64}})).ok());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(db.num_tables(), 2u);
}

TEST(DatabaseTest, TotalTuples) {
  Database db;
  auto t1 = db.CreateTable("t1", Schema({{"x", DataType::kInt64}}));
  auto t2 = db.CreateTable("t2", Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE((*t1)->AppendRow({Value(int64_t{1})}).ok());
  ASSERT_TRUE((*t1)->AppendRow({Value(int64_t{2})}).ok());
  ASSERT_TRUE((*t2)->AppendRow({Value(int64_t{3})}).ok());
  EXPECT_EQ(db.TotalTuples(), 3u);
}

}  // namespace
}  // namespace kwsdbg
