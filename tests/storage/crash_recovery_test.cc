// Crash-recovery wall (gtest tier): forked children are killed at seeded
// fault points mid-mutation-stream via the `crash` fault code (_Exit — no
// flushes, no destructors, a power cut), then the parent replays the log
// and asserts the durability contract: every acknowledged-durable record
// survives, the log never reads back corrupt, and a crash inside the
// checkpoint window (snapshot written, WAL not yet truncated) recovers to
// exactly the full-stream state. The service-level chaos wall with live
// queries on top lives in bench/durability_workload.cc.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/fault_injector.h"
#include "storage/checkpoint.h"
#include "storage/io_util.h"
#include "storage/wal.h"

namespace kwsdbg {
namespace {

constexpr size_t kStreamLen = 20;

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/kwsdbg_crash_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Mutation NthMutation(size_t i) { return Mutation::Delete("T", i + 1); }

/// Durably records the child's highest fsync-covered seq; the parent's
/// zero-loss gate compares recovered records against THIS, not against what
/// the child merely attempted (an unacked suffix may legitimately vanish).
void WriteAck(int fd, uint64_t durable_seq) {
  KWSDBG_CHECK(WriteFullAt(fd, &durable_seq, sizeof(durable_seq), 0,
                           "ack write")
                   .ok());
  KWSDBG_CHECK(SyncFd(fd, "ack sync").ok());
}

uint64_t ReadAck(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok() || contents->size() < sizeof(uint64_t)) return 0;
  uint64_t seq = 0;
  std::memcpy(&seq, contents->data(), sizeof(seq));
  return seq;
}

/// Child body: arm the crash schedule, append the stream, ack durable seqs.
/// Exits 0 when the whole stream survives (crash point past the stream) and
/// kCrashExitCode when the injected kill fires. Never returns.
[[noreturn]] void RunChild(const std::string& dir,
                           const std::string& schedule,
                           FsyncPolicy policy) {
  KWSDBG_CHECK(FaultInjector::Global().Configure(schedule).ok());
  auto ack_fd = OpenFd(dir + "/acks", O_CREAT | O_RDWR, 0644, "ack open");
  KWSDBG_CHECK(ack_fd.ok());
  WalOptions options;
  options.fsync_policy = policy;
  options.group_commit_records = 4;
  auto writer = WalWriter::Open(dir + "/wal.log", options);
  KWSDBG_CHECK(writer.ok()) << writer.status().ToString();
  for (size_t i = 0; i < kStreamLen; ++i) {
    const Status s = (*writer)->AppendMutation(NthMutation(i));
    KWSDBG_CHECK(s.ok()) << s.ToString();
    WriteAck(*ack_fd, (*writer)->durable_seq());
  }
  std::_Exit(0);
}

/// Forks RunChild, reaps it, and returns its wait status.
int ForkChild(const std::string& dir, const std::string& schedule,
              FsyncPolicy policy = FsyncPolicy::kEveryRecord) {
  const pid_t pid = fork();
  KWSDBG_CHECK(pid >= 0);
  if (pid == 0) RunChild(dir, schedule, policy);
  int wstatus = 0;
  KWSDBG_CHECK(waitpid(pid, &wstatus, 0) == pid);
  return wstatus;
}

/// The parent-side gate shared by every crash test: the log reads back
/// valid, holds a strict prefix of the stream, and that prefix covers
/// every acknowledged-durable record.
void VerifyRecovered(const std::string& dir, uint64_t acked_durable) {
  auto replay = ReadWal(dir + "/wal.log");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_GE(replay->records.size(), acked_durable)
      << "lost acknowledged-durable records";
  for (size_t i = 0; i < replay->records.size(); ++i) {
    EXPECT_EQ(replay->records[i].seq, i + 1);
    EXPECT_EQ(replay->records[i].mutation.row_id, i + 1);  // Prefix, in order.
  }
}

TEST(CrashRecoveryTest, KilledAtAppendNeverLosesDurableRecords) {
  for (uint64_t after : {0u, 1u, 5u, 13u}) {
    const std::string dir = FreshDir("append_" + std::to_string(after));
    const int wstatus = ForkChild(
        dir, "storage.wal.append=crash,after=" + std::to_string(after));
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode)
        << "crash fault did not fire (after=" << after << ")";
    const uint64_t acked = ReadAck(dir + "/acks");
    EXPECT_EQ(acked, after);  // Every-record: ack tracks appends exactly.
    VerifyRecovered(dir, acked);
  }
}

TEST(CrashRecoveryTest, KilledAtFsyncNeverLosesDurableRecords) {
  // The fsync point fires after the frame was write()n but before it was
  // made durable: the record may survive (it is in the page cache) but was
  // never acknowledged durable — either outcome passes the gate.
  for (uint64_t after : {0u, 3u, 9u}) {
    const std::string dir = FreshDir("fsync_" + std::to_string(after));
    const int wstatus = ForkChild(
        dir, "storage.wal.fsync=crash,after=" + std::to_string(after));
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode);
    VerifyRecovered(dir, ReadAck(dir + "/acks"));
  }
}

TEST(CrashRecoveryTest, GroupCommitCrashLosesOnlyUnackedSuffix) {
  for (uint64_t after : {2u, 6u, 11u}) {
    const std::string dir = FreshDir("group_" + std::to_string(after));
    const int wstatus = ForkChild(
        dir, "storage.wal.append=crash,after=" + std::to_string(after),
        FsyncPolicy::kGroupCommit);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode);
    const uint64_t acked = ReadAck(dir + "/acks");
    EXPECT_LE(acked, after);  // Group commit acks durability in windows.
    VerifyRecovered(dir, acked);
  }
}

TEST(CrashRecoveryTest, SurvivingChildLeavesFullStream) {
  const std::string dir = FreshDir("survive");
  const int wstatus =
      ForkChild(dir, "storage.wal.append=crash,after=1000");
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0);
  auto replay = ReadWal(dir + "/wal.log");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), kStreamLen);
  EXPECT_EQ(ReadAck(dir + "/acks"), kStreamLen);
}

TEST(CrashRecoveryTest, KilledDuringTruncateLeavesOneCompleteLog) {
  // Truncation stages the replacement log at wal.log.tmp and renames it
  // over the live one. A power cut at either truncate kill point — entry,
  // or staged-but-not-renamed — must leave a complete log: never a
  // zero-length stub whose recreation would restart seqs below the
  // checkpoint (making post-recovery acknowledged writes replay as
  // already covered), and never a fresh header over stale frames.
  // Hit #1 of storage.wal.truncate is the child's initial log creation,
  // so `after` starts at 1 to land the kills inside Truncate itself.
  for (uint64_t after : {1u, 2u}) {
    const std::string dir = FreshDir("truncate_" + std::to_string(after));
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      KWSDBG_CHECK(FaultInjector::Global()
                       .Configure("storage.wal.truncate=crash,after=" +
                                  std::to_string(after))
                       .ok());
      auto db = std::make_unique<Database>();
      Table* t = *db->CreateTable(
          "T", Schema({{"id", DataType::kInt64}, {"w", DataType::kString}}));
      auto writer = WalWriter::Open(dir + "/wal.log");
      KWSDBG_CHECK(writer.ok());
      for (int i = 1; i <= 4; ++i) {
        KWSDBG_CHECK(
            t->AppendRow({Value(int64_t{i}), Value("row" + std::to_string(i))})
                .ok());
        KWSDBG_CHECK((*writer)
                         ->AppendMutation(Mutation::Insert(
                             "T", {Value(int64_t{i}),
                                   Value("row" + std::to_string(i))}))
                         .ok());
      }
      KWSDBG_CHECK(WriteCheckpoint(*db, dir, /*covered_seq=*/4).ok());
      KWSDBG_CHECK((*writer)->Truncate(4).ok());  // The kill fires inside.
      std::_Exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode)
        << "truncate crash did not fire (after=" << after << ")";

    // The surviving log is whole: either the old one (all four frames) or
    // the renamed replacement (bare header at the covered boundary).
    auto replay = ReadWal(dir + "/wal.log");
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE((replay->base_seq == 0 && replay->records.size() == 4) ||
                (replay->base_seq == 4 && replay->records.empty()))
        << "base_seq=" << replay->base_seq
        << " records=" << replay->records.size();

    // Recovery: the snapshot covers seq 4, replay skips covered records,
    // and reopening against the covered seq restarts appends above it.
    CheckpointInfo info;
    auto restored = RestoreCheckpoint(dir, &info);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(info.covered_seq, 4u);
    auto writer =
        WalWriter::Open(dir + "/wal.log", WalOptions{}, info.covered_seq);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->next_seq(), 5u);
  }
}

TEST(CrashRecoveryTest, CrashBetweenCheckpointAndTruncateIsSafe) {
  // The checkpoint protocol's crash window: snapshot written (covering seq
  // 3) but the WAL not yet truncated. Recovery must restore the snapshot
  // and replay ONLY seqs 4-5 — re-replaying covered records is impossible
  // by construction (seq <= covered is skipped), not merely idempotent.
  const std::string dir = FreshDir("ckpt_window");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto db = std::make_unique<Database>();
    Table* t = *db->CreateTable(
        "T", Schema({{"id", DataType::kInt64}, {"w", DataType::kString}}));
    auto writer = WalWriter::Open(dir + "/wal.log");
    KWSDBG_CHECK(writer.ok());
    for (int i = 1; i <= 5; ++i) {
      KWSDBG_CHECK(
          t->AppendRow({Value(int64_t{i}), Value("row" + std::to_string(i))})
              .ok());
      KWSDBG_CHECK(
          (*writer)
              ->AppendMutation(Mutation::Insert(
                  "T", {Value(int64_t{i}), Value("row" + std::to_string(i))}))
              .ok());
      if (i == 3) {
        KWSDBG_CHECK(WriteCheckpoint(*db, dir, /*covered_seq=*/3).ok());
        // Power cut here: Truncate(3) never runs.
        std::_Exit(FaultInjector::kCrashExitCode);
      }
    }
    std::_Exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), FaultInjector::kCrashExitCode);

  CheckpointInfo info;
  auto restored = RestoreCheckpoint(dir, &info);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(info.covered_seq, 3u);
  Table* t = (*restored)->FindTable("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 3u);

  auto replay = ReadWal(dir + "/wal.log");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  size_t replayed = 0;
  for (const WalRecord& rec : replay->records) {
    if (rec.seq <= info.covered_seq) continue;  // Covered by the snapshot.
    ASSERT_TRUE(t->AppendRow(rec.mutation.row).ok());
    ++replayed;
  }
  // The snapshot held seqs 1-3 and the log 1-3 as well (the crash landed
  // before seqs 4-5 were written), so nothing replays — and nothing
  // double-applies.
  EXPECT_EQ(replayed, 0u);
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->at(2, 1).AsString(), "row3");
}

}  // namespace
}  // namespace kwsdbg
