// Checkpoint/restore contract: catalog round-trip (schemas, rows, row ids,
// tombstones, data epochs, catalog epoch), metadata-only reads, atomic
// replacement, corruption -> kDataLoss, and the write fault point.
#include "storage/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "storage/database.h"

namespace kwsdbg {
namespace {

std::string TestDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/kwsdbg_ckpt_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string CheckpointPath(const std::string& dir) {
  return dir + "/" + kCheckpointFileName;
}

/// Two tables, one with a tombstone and a bumped data epoch, plus a catalog
/// epoch bump — every field a restore must reproduce.
std::unique_ptr<Database> BuildSample() {
  auto db = std::make_unique<Database>();
  Table* color = *db->CreateTable(
      "Color", Schema({{"id", DataType::kInt64}, {"name", DataType::kString}}));
  KWSDBG_CHECK(color->AppendRow({Value(int64_t{1}), Value("red")}).ok());
  KWSDBG_CHECK(color->AppendRow({Value(int64_t{2}), Value("green")}).ok());
  KWSDBG_CHECK(color->AppendRow({Value(int64_t{3}), Value("blue")}).ok());
  KWSDBG_CHECK(color->DeleteRow(1).ok());
  color->BumpDataEpoch();

  Table* score = *db->CreateTable(
      "Score", Schema({{"w", DataType::kDouble}, {"n", DataType::kString}}));
  KWSDBG_CHECK(score->AppendRow({Value(0.25), Value()}).ok());  // NULL cell.
  db->BumpEpoch();
  return db;
}

TEST(CheckpointTest, RoundTripsCatalogRowsAndEpochs) {
  const std::string dir = TestDir("roundtrip");
  auto db = BuildSample();
  ASSERT_TRUE(WriteCheckpoint(*db, dir, /*covered_seq=*/42).ok());

  CheckpointInfo info;
  auto restored = RestoreCheckpoint(dir, &info);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(info.covered_seq, 42u);
  EXPECT_EQ(info.db_epoch, db->epoch());
  ASSERT_EQ(info.tables.size(), 2u);
  EXPECT_EQ(info.tables[0].name, "Color");
  EXPECT_EQ(info.tables[0].num_deleted, 1u);

  Database& out = **restored;
  EXPECT_EQ(out.epoch(), db->epoch());
  ASSERT_EQ(out.TableNames(), db->TableNames());

  const Table* color = out.FindTable("Color");
  ASSERT_NE(color, nullptr);
  EXPECT_EQ(color->num_rows(), 3u);
  EXPECT_EQ(color->num_deleted(), 1u);
  EXPECT_TRUE(color->deleted(1));  // Same row id, not renumbered.
  EXPECT_FALSE(color->deleted(0));
  EXPECT_EQ(color->at(0, 1).AsString(), "red");
  EXPECT_EQ(color->at(2, 1).AsString(), "blue");
  EXPECT_EQ(color->data_epoch(), db->FindTable("Color")->data_epoch());
  EXPECT_EQ(color->catalog_index(), db->FindTable("Color")->catalog_index());

  const Table* score = out.FindTable("Score");
  ASSERT_NE(score, nullptr);
  EXPECT_EQ(score->at(0, 0).AsDouble(), 0.25);
  EXPECT_TRUE(score->at(0, 1).is_null());
}

TEST(CheckpointTest, MissingCheckpointIsNotFound) {
  const std::string dir = TestDir("missing");
  EXPECT_EQ(ReadCheckpointInfo(dir).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(RestoreCheckpoint(dir).status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, RewriteReplacesAtomically) {
  const std::string dir = TestDir("rewrite");
  auto db = BuildSample();
  ASSERT_TRUE(WriteCheckpoint(*db, dir, 1).ok());
  ASSERT_TRUE(
      db->FindTable("Score")->AppendRow({Value(0.5), Value("late")}).ok());
  ASSERT_TRUE(WriteCheckpoint(*db, dir, 2).ok());

  CheckpointInfo info;
  auto restored = RestoreCheckpoint(dir, &info);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(info.covered_seq, 2u);
  EXPECT_EQ((*restored)->FindTable("Score")->num_rows(), 2u);
}

TEST(CheckpointTest, IndexFingerprintRoundTrips) {
  const std::string dir = TestDir("fingerprint");
  auto db = BuildSample();
  CheckpointIndexInfo index;
  index.present = true;
  index.num_terms = 123;
  index.num_postings = 4567;
  index.dict_checksum = 0xDEADBEEFCAFEF00Dull;
  ASSERT_TRUE(WriteCheckpoint(*db, dir, 7, index).ok());

  auto info = ReadCheckpointInfo(dir);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->index.present);
  EXPECT_EQ(info->index.num_terms, 123u);
  EXPECT_EQ(info->index.num_postings, 4567u);
  EXPECT_EQ(info->index.dict_checksum, 0xDEADBEEFCAFEF00Dull);
}

TEST(CheckpointTest, CorruptionIsDataLoss) {
  const std::string dir = TestDir("corrupt");
  auto db = BuildSample();
  ASSERT_TRUE(WriteCheckpoint(*db, dir, 1).ok());

  // Flip a byte mid-file. Unlike a WAL tail there is no legitimate torn
  // state behind the atomic rename, so ANY mismatch is kDataLoss.
  const std::string path = CheckpointPath(dir);
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  contents[contents.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }

  EXPECT_EQ(RestoreCheckpoint(dir).status().code(), StatusCode::kDataLoss);

  // Truncation (a torn rename target would look like this) is also loss.
  std::filesystem::resize_file(path, contents.size() / 3);
  EXPECT_EQ(RestoreCheckpoint(dir).status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, WriteFaultLeavesPreviousSnapshotIntact) {
  const std::string dir = TestDir("fault");
  auto db = BuildSample();
  ASSERT_TRUE(WriteCheckpoint(*db, dir, 1).ok());

  {
    ScopedFaultInjection faults("storage.checkpoint.write=unavailable");
    ASSERT_TRUE(
        db->FindTable("Score")->AppendRow({Value(0.75), Value("x")}).ok());
    EXPECT_EQ(WriteCheckpoint(*db, dir, 2).code(),
              StatusCode::kUnavailable);
  }

  // The failed write never touched the published file: the previous
  // snapshot restores cleanly with its covered seq.
  CheckpointInfo info;
  auto restored = RestoreCheckpoint(dir, &info);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(info.covered_seq, 1u);
  EXPECT_EQ((*restored)->FindTable("Score")->num_rows(), 1u);
}

TEST(CheckpointTest, DatabaseFacadeCheckpointAndRecover) {
  const std::string dir = TestDir("facade");
  auto db = BuildSample();
  ASSERT_TRUE(db->Checkpoint(dir, 9).ok());
  auto recovered = Database::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->TotalTuples(), db->TotalTuples());
  EXPECT_EQ((*recovered)->epoch(), db->epoch());
}

}  // namespace
}  // namespace kwsdbg
