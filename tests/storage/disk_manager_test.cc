// DiskManager contract: free-list recycling, multi-page extents, zero-fill
// of never-written pages, persistent Open() across incarnations, typed
// close/closed-file errors, fault-point propagation, and the stale-spill
// sweep that reclaims page files orphaned by crashed processes.
#include "storage/disk_manager.h"

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"

namespace kwsdbg {
namespace {

constexpr size_t kPage = DiskManager::kMinPageSize;

std::string TestPath(const std::string& tag) {
  const std::string path =
      testing::TempDir() + "/kwsdbg_dm_" + tag + ".pages";
  std::remove(path.c_str());
  return path;
}

std::string PageOf(char fill) { return std::string(kPage, fill); }

TEST(DiskManagerTest, RejectsTinyPageSize) {
  EXPECT_EQ(DiskManager::Create(TestPath("tiny"), 16).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiskManagerTest, SinglePageFreeListRecycling) {
  auto dm = DiskManager::Create(TestPath("freelist"), kPage);
  ASSERT_TRUE(dm.ok()) << dm.status().ToString();
  DiskManager& disk = **dm;

  const uint64_t a = *disk.AllocatePages(1);
  const uint64_t b = *disk.AllocatePages(1);
  EXPECT_NE(a, b);
  disk.FreePages(a, 1);
  // A freed single page is recycled before the file grows.
  EXPECT_EQ(*disk.AllocatePages(1), a);
  EXPECT_EQ(disk.stats().pages_freed, 1u);
  EXPECT_EQ(disk.stats().pages_allocated, 3u);
  EXPECT_EQ(disk.num_pages(), 2u);
}

TEST(DiskManagerTest, MultiPageExtentsAreContiguousAndSkipFreeList) {
  auto dm = DiskManager::Create(TestPath("extent"), kPage);
  ASSERT_TRUE(dm.ok());
  DiskManager& disk = **dm;

  const uint64_t single = *disk.AllocatePages(1);
  disk.FreePages(single, 1);
  // An extent must be contiguous, so it appends past the end instead of
  // consuming the (single-page) free list.
  const uint64_t extent = *disk.AllocatePages(3);
  EXPECT_EQ(extent, 1u);
  EXPECT_EQ(disk.num_pages(), 4u);

  const std::string payload = PageOf('a') + PageOf('b') + PageOf('c');
  ASSERT_TRUE(disk.WritePages(extent, 3, payload.data()).ok());
  std::string readback(3 * kPage, '\0');
  ASSERT_TRUE(disk.ReadPages(extent, 3, readback.data()).ok());
  EXPECT_EQ(readback, payload);
  EXPECT_EQ(disk.stats().page_writes, 3u);
  EXPECT_EQ(disk.stats().page_reads, 3u);
}

TEST(DiskManagerTest, NeverWrittenPagesReadAsZeroes) {
  auto dm = DiskManager::Create(TestPath("zero"), kPage);
  ASSERT_TRUE(dm.ok());
  const uint64_t page = *(*dm)->AllocatePages(1);
  std::string buf(kPage, 'x');
  ASSERT_TRUE((*dm)->ReadPages(page, 1, buf.data()).ok());
  EXPECT_EQ(buf, std::string(kPage, '\0'));
}

TEST(DiskManagerTest, BoundsAreChecked) {
  auto dm = DiskManager::Create(TestPath("bounds"), kPage);
  ASSERT_TRUE(dm.ok());
  std::string buf(kPage, '\0');
  EXPECT_EQ((*dm)->ReadPages(0, 1, buf.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*dm)->WritePages(0, 1, buf.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*dm)->AllocatePages(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DiskManagerTest, TempFileIsRemovedOnDestruction) {
  std::string path;
  {
    auto dm = DiskManager::Create(TestPath("unlink"), kPage);
    ASSERT_TRUE(dm.ok());
    path = (*dm)->path();
    EXPECT_FALSE((*dm)->persistent());
    ASSERT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(DiskManagerTest, OpenPersistsPagesAcrossIncarnations) {
  const std::string path = TestPath("persist");
  {
    auto dm = DiskManager::Open(path, kPage);
    ASSERT_TRUE(dm.ok()) << dm.status().ToString();
    EXPECT_TRUE((*dm)->persistent());
    EXPECT_EQ((*dm)->num_pages(), 0u);
    const uint64_t extent = *(*dm)->AllocatePages(2);
    const std::string payload = PageOf('p') + PageOf('q');
    ASSERT_TRUE((*dm)->WritePages(extent, 2, payload.data()).ok());
    ASSERT_TRUE((*dm)->Sync().ok());
    EXPECT_EQ((*dm)->stats().syncs, 1u);
  }
  ASSERT_TRUE(std::filesystem::exists(path));  // Survived the destructor.

  auto dm = DiskManager::Open(path, kPage);
  ASSERT_TRUE(dm.ok());
  // Page count adopted from the file size.
  EXPECT_EQ((*dm)->num_pages(), 2u);
  std::string readback(2 * kPage, '\0');
  ASSERT_TRUE((*dm)->ReadPages(0, 2, readback.data()).ok());
  EXPECT_EQ(readback, PageOf('p') + PageOf('q'));
  std::filesystem::remove(path);
}

TEST(DiskManagerTest, CloseSurfacesAndFurtherIoFailsTyped) {
  auto dm = DiskManager::Create(TestPath("close"), kPage);
  ASSERT_TRUE(dm.ok());
  const uint64_t page = *(*dm)->AllocatePages(1);
  ASSERT_TRUE((*dm)->Close().ok());
  ASSERT_TRUE((*dm)->Close().ok());  // Idempotent.
  std::string buf(kPage, '\0');
  EXPECT_EQ((*dm)->ReadPages(page, 1, buf.data()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*dm)->WritePages(page, 1, buf.data()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*dm)->Sync().code(), StatusCode::kFailedPrecondition);
}

TEST(DiskManagerTest, FaultPointsPropagateTyped) {
  auto dm = DiskManager::Create(TestPath("faults"), kPage);
  ASSERT_TRUE(dm.ok());
  const uint64_t page = *(*dm)->AllocatePages(1);
  std::string buf(kPage, '\0');
  {
    ScopedFaultInjection faults("storage.disk.write=unavailable,times=1");
    EXPECT_EQ((*dm)->WritePages(page, 1, buf.data()).code(),
              StatusCode::kUnavailable);
  }
  {
    ScopedFaultInjection faults("storage.disk.read=unavailable,times=1");
    EXPECT_EQ((*dm)->ReadPages(page, 1, buf.data()).code(),
              StatusCode::kUnavailable);
  }
  {
    ScopedFaultInjection faults("storage.disk.sync=unavailable,times=1");
    EXPECT_EQ((*dm)->Sync().code(), StatusCode::kUnavailable);
  }
  // Injected faults do not corrupt the manager: plain I/O still works.
  EXPECT_TRUE((*dm)->WritePages(page, 1, buf.data()).ok());
}

TEST(DiskManagerTest, SweepReclaimsOnlyDeadOwnersSpillFiles) {
  const std::string dir = testing::TempDir() + "/kwsdbg_sweep_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto touch = [&](const std::string& name) {
    std::ofstream(dir + "/" + name) << "x";
  };

  // A pid that is guaranteed dead and reaped: our own forked child.
  const pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(dead, &wstatus, 0), dead);

  const std::string dead_file =
      "kwsdbg_spill_" + std::to_string(dead) + "_0.pages";
  const std::string live_file =
      "kwsdbg_spill_" + std::to_string(getpid()) + "_0.pages";
  touch(dead_file);
  touch(live_file);
  touch("kwsdbg_spill_notapid_0.pages");  // Unparsable: left alone.
  touch("unrelated.pages");               // Wrong prefix: left alone.

  auto removed = SweepStaleSpillFiles(dir);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + dead_file));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + live_file));
  EXPECT_TRUE(std::filesystem::exists(dir + "/unrelated.pages"));

  // Absent directory: zero removed, not an error.
  EXPECT_EQ(*SweepStaleSpillFiles(dir + "/nope"), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kwsdbg
