#include "storage/value.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(std::string("hey")).AsString(), "hey");
}

TEST(ValueTest, SqlEqualsNullNeverMatches) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().SqlEquals(Value(int64_t{1})));
  EXPECT_FALSE(Value(int64_t{1}).SqlEquals(Value::Null()));
}

TEST(ValueTest, SqlEqualsSameType) {
  EXPECT_TRUE(Value(int64_t{3}).SqlEquals(Value(int64_t{3})));
  EXPECT_FALSE(Value(int64_t{3}).SqlEquals(Value(int64_t{4})));
  EXPECT_TRUE(Value("a").SqlEquals(Value("a")));
  EXPECT_FALSE(Value("a").SqlEquals(Value("b")));
  EXPECT_TRUE(Value(1.5).SqlEquals(Value(1.5)));
}

TEST(ValueTest, SqlEqualsNumericCrossType) {
  EXPECT_TRUE(Value(int64_t{2}).SqlEquals(Value(2.0)));
  EXPECT_TRUE(Value(2.0).SqlEquals(Value(int64_t{2})));
  EXPECT_FALSE(Value(int64_t{2}).SqlEquals(Value(2.5)));
  EXPECT_FALSE(Value(int64_t{2}).SqlEquals(Value("2")));
}

TEST(ValueTest, StructuralEqualityIncludesNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));  // different alternatives
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(int64_t{8}).Hash());
}

TEST(ValueTest, DoubleToStringTrimsZeros) {
  EXPECT_EQ(Value(4.99).ToString().substr(0, 4), "4.99");
  EXPECT_EQ(Value(3.0).ToString(), "3.0");
}

TEST(ValueTest, DataTypeToString) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "TEXT");
}

}  // namespace
}  // namespace kwsdbg
