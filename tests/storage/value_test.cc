#include "storage/value.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(std::string("hey")).AsString(), "hey");
}

TEST(ValueTest, SqlEqualsNullNeverMatches) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().SqlEquals(Value(int64_t{1})));
  EXPECT_FALSE(Value(int64_t{1}).SqlEquals(Value::Null()));
}

TEST(ValueTest, SqlEqualsSameType) {
  EXPECT_TRUE(Value(int64_t{3}).SqlEquals(Value(int64_t{3})));
  EXPECT_FALSE(Value(int64_t{3}).SqlEquals(Value(int64_t{4})));
  EXPECT_TRUE(Value("a").SqlEquals(Value("a")));
  EXPECT_FALSE(Value("a").SqlEquals(Value("b")));
  EXPECT_TRUE(Value(1.5).SqlEquals(Value(1.5)));
}

TEST(ValueTest, SqlEqualsNumericCrossType) {
  EXPECT_TRUE(Value(int64_t{2}).SqlEquals(Value(2.0)));
  EXPECT_TRUE(Value(2.0).SqlEquals(Value(int64_t{2})));
  EXPECT_FALSE(Value(int64_t{2}).SqlEquals(Value(2.5)));
  EXPECT_FALSE(Value(int64_t{2}).SqlEquals(Value("2")));
}

TEST(ValueTest, StructuralEqualityIncludesNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));  // different alternatives
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(int64_t{8}).Hash());
}

// Hash64 is the probe-engine key: any pair that operator== calls equal must
// hash identically, across every alternative, and equal-looking values of
// different alternatives must not coincide by construction (the type tag).
TEST(ValueTest, Hash64AgreesWithStructuralEquality) {
  const Value samples[] = {
      Value::Null(),        Value(int64_t{0}),   Value(int64_t{-1}),
      Value(int64_t{7}),    Value(0.0),          Value(-0.0),
      Value(7.0),           Value(2.5),          Value(""),
      Value("7"),           Value("abc"),        Value("abd"),
      Value(std::string("abc")),
  };
  for (const Value& a : samples) {
    for (const Value& b : samples) {
      if (a == b) {
        EXPECT_EQ(a.Hash64(), b.Hash64())
            << a.ToString() << " == " << b.ToString() << " but hashes differ";
      }
    }
  }
}

TEST(ValueTest, Hash64SignedZeroCanonicalized) {
  // -0.0 == 0.0 under the variant's double comparison, so the bit patterns
  // must be canonicalized before hashing.
  ASSERT_EQ(Value(0.0), Value(-0.0));
  EXPECT_EQ(Value(0.0).Hash64(), Value(-0.0).Hash64());
}

TEST(ValueTest, Hash64TypeTagSeparatesAlternatives) {
  // Structural (not SQL) semantics: int 7 and double 7.0 are different keys,
  // and the string "7" is a third. NULL hashes are stable but distinct too.
  EXPECT_NE(Value(int64_t{7}).Hash64(), Value(7.0).Hash64());
  EXPECT_NE(Value(int64_t{7}).Hash64(), Value("7").Hash64());
  EXPECT_NE(Value(7.0).Hash64(), Value("7").Hash64());
  EXPECT_NE(Value::Null().Hash64(), Value(int64_t{0}).Hash64());
  EXPECT_EQ(Value::Null().Hash64(), Value::Null().Hash64());
}

TEST(ValueTest, Hash64SpreadsNearbyKeys) {
  // Sequential surrogate keys are the common join-column shape; the
  // finalizer must not map them to sequential hashes (that would cluster
  // linear-probing buckets). Checking all pairs distinct + high bits used.
  uint64_t or_of_high_bits = 0;
  for (int64_t i = 0; i < 64; ++i) {
    for (int64_t j = i + 1; j < 64; ++j) {
      EXPECT_NE(Value(i).Hash64(), Value(j).Hash64());
    }
    or_of_high_bits |= Value(i).Hash64() >> 32;
  }
  EXPECT_NE(or_of_high_bits, 0u);
}

TEST(ValueTest, DoubleToStringTrimsZeros) {
  EXPECT_EQ(Value(4.99).ToString().substr(0, 4), "4.99");
  EXPECT_EQ(Value(3.0).ToString(), "3.0");
}

TEST(ValueTest, DataTypeToString) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "TEXT");
}

}  // namespace
}  // namespace kwsdbg
