#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace kwsdbg {
namespace {

Table MakeTable() {
  Table t("t", Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"cost", DataType::kDouble}}));
  EXPECT_TRUE(
      t.AppendRow({Value(int64_t{1}), Value("plain"), Value(1.5)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value("has, comma"),
                           Value::Null()})
                  .ok());
  EXPECT_TRUE(
      t.AppendRow({Value::Null(), Value("quote \"inside\""), Value(2.0)})
          .ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4}), Value(""), Value(0.5)}).ok());
  return t;
}

TEST(CsvTest, RoundTripPreservesEverything) {
  Table t = MakeTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableCsv(t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableCsv("t", &in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->schema(), t.schema());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.schema().num_columns(); ++c) {
      EXPECT_EQ(back->at(r, c), t.at(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, NullVersusEmptyString) {
  Table t("t", Schema({{"s", DataType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value("")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteTableCsv(t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableCsv("t", &in);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->at(0, 0).is_string());
  EXPECT_EQ(back->at(0, 0).AsString(), "");
  EXPECT_TRUE(back->at(1, 0).is_null());
}

TEST(CsvTest, HeaderCarriesTypes) {
  Table t = MakeTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableCsv(t, &out).ok());
  EXPECT_EQ(out.str().substr(0, out.str().find('\n')),
            "id:INT,name:TEXT,cost:DOUBLE");
}

TEST(CsvTest, RejectsBadHeader) {
  std::istringstream in("id,name\n1,a\n");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsBadInt) {
  std::istringstream in("id:INT\nnot_a_number\n");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsArityMismatch) {
  std::istringstream in("a:INT,b:INT\n1\n");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

// --- Corrupt-input regression fixtures (loader hardening) -----------------
// Each corrupt shape must surface a typed ParseError naming the line, never
// an assert, a silent truncation, or a half-loaded table.

Status ReadCorrupt(const std::string& csv) {
  std::istringstream in(csv);
  return ReadTableCsv("t", &in).status();
}

TEST(CsvCorruptTest, UnterminatedQuote) {
  Status s = ReadCorrupt("s:TEXT\n\"never closed\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("unterminated quote"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
}

TEST(CsvCorruptTest, TextAfterClosingQuote) {
  Status s = ReadCorrupt("s:TEXT\n\"ab\"cd\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("text after closing quote"), std::string::npos)
      << s.ToString();
}

TEST(CsvCorruptTest, QuoteOpeningMidField) {
  Status s = ReadCorrupt("s:TEXT\nab\"cd\"\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("quote opening mid-field"), std::string::npos)
      << s.ToString();
}

TEST(CsvCorruptTest, EmbeddedNul) {
  std::string line = "s:TEXT\nab";
  line += '\0';
  line += "cd\n";
  Status s = ReadCorrupt(line);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("embedded NUL"), std::string::npos)
      << s.ToString();
}

TEST(CsvCorruptTest, RaggedRowNamesLineAndArity) {
  Status s = ReadCorrupt("a:INT,b:INT\n1,2\n3\n4,5\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("want 2"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("got 1"), std::string::npos) << s.ToString();
}

TEST(CsvCorruptTest, IntWithTrailingGarbage) {
  // std::stoll would have accepted "12abc" as 12; the strict parser rejects.
  Status s = ReadCorrupt("a:INT\n12abc\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("12abc"), std::string::npos) << s.ToString();
}

TEST(CsvCorruptTest, IntOverflow) {
  Status s = ReadCorrupt("a:INT\n99999999999999999999999\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(CsvCorruptTest, DoubleWithTrailingGarbage) {
  Status s = ReadCorrupt("a:DOUBLE\n1.5x\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(CsvCorruptTest, HeaderWithEmptyColumnName) {
  Status s = ReadCorrupt(":INT\n1\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(CsvCorruptTest, LongCorruptLineIsExcerptedInMessage) {
  std::string line(500, 'x');
  Status s = ReadCorrupt("a:INT,b:INT\n" + line + "\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_LT(s.message().size(), 200u)
      << "corrupt-line excerpt must be capped: " << s.ToString();
  EXPECT_NE(s.message().find("..."), std::string::npos) << s.ToString();
}

TEST(CsvTest, FileRoundTrip) {
  Table t = MakeTable();
  const std::string path = testing::TempDir() + "/kwsdbg_csv_test.csv";
  ASSERT_TRUE(WriteTableCsvFile(t, path).ok());
  auto back = ReadTableCsvFile("t", path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), t.num_rows());
  EXPECT_FALSE(ReadTableCsvFile("t", path + ".missing").ok());
}

}  // namespace
}  // namespace kwsdbg
