#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace kwsdbg {
namespace {

Table MakeTable() {
  Table t("t", Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"cost", DataType::kDouble}}));
  EXPECT_TRUE(
      t.AppendRow({Value(int64_t{1}), Value("plain"), Value(1.5)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value("has, comma"),
                           Value::Null()})
                  .ok());
  EXPECT_TRUE(
      t.AppendRow({Value::Null(), Value("quote \"inside\""), Value(2.0)})
          .ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4}), Value(""), Value(0.5)}).ok());
  return t;
}

TEST(CsvTest, RoundTripPreservesEverything) {
  Table t = MakeTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableCsv(t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableCsv("t", &in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->schema(), t.schema());
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.schema().num_columns(); ++c) {
      EXPECT_EQ(back->at(r, c), t.at(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, NullVersusEmptyString) {
  Table t("t", Schema({{"s", DataType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value("")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteTableCsv(t, &out).ok());
  std::istringstream in(out.str());
  auto back = ReadTableCsv("t", &in);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->at(0, 0).is_string());
  EXPECT_EQ(back->at(0, 0).AsString(), "");
  EXPECT_TRUE(back->at(1, 0).is_null());
}

TEST(CsvTest, HeaderCarriesTypes) {
  Table t = MakeTable();
  std::ostringstream out;
  ASSERT_TRUE(WriteTableCsv(t, &out).ok());
  EXPECT_EQ(out.str().substr(0, out.str().find('\n')),
            "id:INT,name:TEXT,cost:DOUBLE");
}

TEST(CsvTest, RejectsBadHeader) {
  std::istringstream in("id,name\n1,a\n");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsBadInt) {
  std::istringstream in("id:INT\nnot_a_number\n");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsArityMismatch) {
  std::istringstream in("a:INT,b:INT\n1\n");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_EQ(ReadTableCsv("t", &in).status().code(), StatusCode::kParseError);
}

TEST(CsvTest, FileRoundTrip) {
  Table t = MakeTable();
  const std::string path = testing::TempDir() + "/kwsdbg_csv_test.csv";
  ASSERT_TRUE(WriteTableCsvFile(t, path).ok());
  auto back = ReadTableCsvFile("t", path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), t.num_rows());
  EXPECT_FALSE(ReadTableCsvFile("t", path + ".missing").ok());
}

}  // namespace
}  // namespace kwsdbg
