// Shared fixtures for traversal/debugger tests: the toy database of Fig. 2
// with a generated lattice, inverted index, and helpers to run strategies.
#ifndef KWSDBG_TESTS_TEST_UTIL_H_
#define KWSDBG_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "common/logging.h"
#include "datasets/toy_product_db.h"
#include "kws/pruned_lattice.h"
#include "lattice/lattice_generator.h"
#include "sql/executor.h"
#include "text/inverted_index.h"
#include "traversal/evaluator.h"
#include "traversal/strategy.h"

namespace kwsdbg {
namespace testutil {

/// Toy database + lattice + index, ready to run traversals.
class ToyFixture {
 public:
  explicit ToyFixture(size_t max_joins = 2, size_t copies = 2) {
    auto ds = BuildToyProductDatabase();
    KWSDBG_CHECK(ds.ok()) << ds.status().ToString();
    db = std::move(ds->db);
    schema = std::move(ds->schema);
    LatticeConfig config;
    config.max_joins = max_joins;
    config.num_keyword_copies = copies;
    auto lat = LatticeGenerator::Generate(schema, config);
    KWSDBG_CHECK(lat.ok()) << lat.status().ToString();
    lattice = std::move(*lat);
    index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db));
    item = *schema.RelationIdByName("Item");
    color = *schema.RelationIdByName("Color");
    ptype = *schema.RelationIdByName("ProductType");
    attr = *schema.RelationIdByName("Attribute");
  }

  /// Runs one strategy over one binding with a fresh executor; returns the
  /// result (asserts success).
  TraversalResult Run(TraversalStrategy* strategy,
                      const KeywordBinding& binding) const {
    PrunedLattice pl = PrunedLattice::Build(*lattice, binding);
    Executor executor(db.get());
    QueryEvaluator evaluator(db.get(), &executor, &pl, index.get());
    auto result = strategy->Run(pl, &evaluator);
    KWSDBG_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  /// Render a node's join network as a set-comparable string.
  std::string NodeName(NodeId id) const {
    return lattice->node(id).tree.ToString(schema);
  }

  std::set<std::string> MpanNames(const MtnOutcome& outcome) const {
    std::set<std::string> out;
    for (NodeId m : outcome.mpans) out.insert(NodeName(m));
    return out;
  }

  std::unique_ptr<Database> db;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
  std::unique_ptr<InvertedIndex> index;
  RelationId item = 0, color = 0, ptype = 0, attr = 0;
};

/// Canonical comparable form of a TraversalResult (ignores stats; covers
/// aliveness, MPANs, and culprits).
struct OutcomeSummary {
  NodeId mtn;
  bool alive;
  std::vector<NodeId> mpans;
  std::vector<NodeId> culprits;

  bool operator==(const OutcomeSummary&) const = default;
  bool operator<(const OutcomeSummary& o) const { return mtn < o.mtn; }
};

inline std::vector<OutcomeSummary> Summarize(const TraversalResult& r) {
  std::vector<OutcomeSummary> out;
  for (const MtnOutcome& o : r.outcomes) {
    out.push_back({o.mtn, o.alive, o.mpans, o.culprits});
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace testutil
}  // namespace kwsdbg

#endif  // KWSDBG_TESTS_TEST_UTIL_H_
