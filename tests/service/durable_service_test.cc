// Service-layer durability: WAL-on-apply, recovery-on-construct (replay +
// index-fingerprint validation), Checkpoint() truncation, Drain() admission
// semantics, kDataLoss surfacing, and the durability counters through
// ServiceStats and JSON.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "debugger/non_answer_debugger.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/kwsdbg_durable_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

ServiceOptions DurableOptions(const std::string& dir,
                              FsyncPolicy policy = FsyncPolicy::kEveryRecord) {
  ServiceOptions options;
  options.num_workers = 2;
  options.durability.dir = dir;
  options.durability.wal.fsync_policy = policy;
  return options;
}

/// The mutation stream every test replays: inserts (one with fresh
/// vocabulary, so the index fingerprint moves), an update, and a delete.
std::vector<Mutation> SampleStream() {
  return {
      Mutation::Insert("Color",
                       {Value(int64_t{50}), Value("red"), Value("walshade")}),
      Mutation::Insert("Attribute",
                       {Value(int64_t{51}), Value("scent"), Value("smoky")}),
      Mutation::Update("Color", 0, 2, Value("rewritten")),
      Mutation::Insert("Color",
                       {Value(int64_t{52}), Value("golden"), Value("pale")}),
      Mutation::Delete("Attribute", 0),
  };
}

/// Classification signatures from a fresh serial debugger whose index is
/// rebuilt from the database's CURRENT contents — recovered state must
/// match this oracle exactly.
std::vector<std::string> OracleSignatures(const Database& db,
                                          const Lattice& lattice,
                                          const std::vector<std::string>& qs) {
  const InvertedIndex fresh = InvertedIndex::Build(db);
  NonAnswerDebugger serial(&db, &lattice, &fresh);
  std::vector<std::string> sigs;
  for (const std::string& q : qs) {
    auto report = serial.Debug(q);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    sigs.push_back(report->ClassificationSignature());
  }
  return sigs;
}

std::vector<std::string> ToyQueries() {
  return {"saffron candle", "incense", "golden", "smoky"};
}

TEST(DurableServiceTest, ConstServiceReportsFailedPrecondition) {
  ToyFixture fx;
  const Database* db = fx.db.get();
  const InvertedIndex* index = fx.index.get();
  DebugService service(db, fx.lattice.get(), index,
                       DurableOptions(FreshDir("const")));
  EXPECT_EQ(service.durability_status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.wal(), nullptr);
  EXPECT_EQ(service.Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Drain().code(), StatusCode::kFailedPrecondition);
}

TEST(DurableServiceTest, MutationsAreLoggedAndReplayedOnRecovery) {
  const std::string dir = FreshDir("replay");
  size_t logged = 0;
  size_t expected_tuples = 0;
  std::vector<std::string> want;

  {
    ToyFixture fx;
    DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                         DurableOptions(dir));
    ASSERT_TRUE(service.durability_status().ok())
        << service.durability_status().ToString();
    ASSERT_NE(service.wal(), nullptr);
    for (const Mutation& m : SampleStream()) {
      ASSERT_TRUE(service.ApplyMutation(m).ok());
    }
    // Every-record policy: the acked stream is durable in full.
    logged = service.wal()->stats().records_appended;
    EXPECT_GE(logged, SampleStream().size());  // + any compaction records.
    EXPECT_EQ(service.wal()->durable_seq(), logged);
    expected_tuples = fx.db->TotalTuples();
    want = OracleSignatures(*fx.db, *fx.lattice, ToyQueries());

    BatchResult batch = service.RunBatch(ToyQueries());
    ASSERT_TRUE(batch.status.ok());
    EXPECT_EQ(batch.stats.wal_records, logged);
    EXPECT_GT(batch.stats.wal_fsyncs, 0u);
    EXPECT_EQ(batch.stats.wal_replayed, 0u);
    const std::string json = ServiceStatsToJson(batch.stats);
    EXPECT_NE(json.find("\"wal_records\":" + std::to_string(logged)),
              std::string::npos);
    EXPECT_NE(json.find("\"checkpoints\":0"), std::string::npos);
  }

  // "Restart": same initial catalog (the toy builder is deterministic),
  // same durability dir. Construction replays the whole log.
  ToyFixture fx;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       DurableOptions(dir));
  ASSERT_TRUE(service.durability_status().ok())
      << service.durability_status().ToString();
  EXPECT_EQ(fx.db->TotalTuples(), expected_tuples);

  BatchResult batch = service.RunBatch(ToyQueries());
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.stats.wal_replayed, logged);
  // Recovered state classifies bit-identically to the fresh-rebuild oracle.
  std::vector<std::string> got;
  for (const QueryResult& r : batch.results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    got.push_back(r.report.ClassificationSignature());
  }
  EXPECT_EQ(got, want);
}

TEST(DurableServiceTest, CheckpointTruncatesWalAndRecoversFromSnapshot) {
  const std::string dir = FreshDir("checkpoint");
  size_t expected_tuples = 0;
  uint64_t tail_records = 0;

  {
    ToyFixture fx;
    DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                         DurableOptions(dir));
    ASSERT_TRUE(service.durability_status().ok());
    const std::vector<Mutation> stream = SampleStream();
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(service.ApplyMutation(stream[i]).ok());
    }
    ASSERT_TRUE(service.Checkpoint().ok());
    const uint64_t after_ckpt = service.wal()->next_seq();
    for (size_t i = 3; i < stream.size(); ++i) {
      ASSERT_TRUE(service.ApplyMutation(stream[i]).ok());
    }
    tail_records = service.wal()->next_seq() - after_ckpt;
    expected_tuples = fx.db->TotalTuples();

    BatchResult batch = service.RunBatch({"incense"});
    ASSERT_TRUE(batch.status.ok());
    EXPECT_EQ(batch.stats.checkpoints, 1u);
    // The WAL restarted at the checkpoint boundary.
    EXPECT_EQ(service.wal()->stats().truncations, 1u);
  }

  // Restore the snapshot, rebuild the index from it, and let the service
  // replay only the post-checkpoint suffix.
  auto restored = Database::Recover(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::unique_ptr<Database> db = std::move(*restored);
  auto index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db));
  ToyFixture fx;  // Only for the (content-independent) lattice.
  DebugService service(db.get(), fx.lattice.get(), index.get(),
                       DurableOptions(dir));
  ASSERT_TRUE(service.durability_status().ok())
      << service.durability_status().ToString();
  EXPECT_EQ(db->TotalTuples(), expected_tuples);

  BatchResult batch = service.RunBatch({"incense"});
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.stats.wal_replayed, tail_records);
}

TEST(DurableServiceTest, DrainStopsAdmissionAndLeavesEmptyLog) {
  const std::string dir = FreshDir("drain");
  size_t expected_tuples = 0;
  {
    ToyFixture fx;
    DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                         DurableOptions(dir, FsyncPolicy::kGroupCommit));
    ASSERT_TRUE(service.durability_status().ok());
    for (const Mutation& m : SampleStream()) {
      ASSERT_TRUE(service.ApplyMutation(m).ok());
    }
    expected_tuples = fx.db->TotalTuples();
    ASSERT_TRUE(service.Drain().ok());

    // Post-drain: reads, writes, and batches are all refused typed.
    EXPECT_EQ(service.ApplyMutation(SampleStream()[0]).code(),
              StatusCode::kUnavailable);
    EXPECT_EQ(service
                  .Submit("incense", 0, [](QueryResult) {})
                  .code(),
              StatusCode::kUnavailable);
    BatchResult refused = service.RunBatch({"incense"});
    EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable);
  }

  // A drained service checkpointed everything: recovery restores the
  // snapshot and replays nothing.
  auto restored = Database::Recover(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::unique_ptr<Database> db = std::move(*restored);
  EXPECT_EQ(db->TotalTuples(), expected_tuples);
  auto index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db));
  ToyFixture fx;
  DebugService service(db.get(), fx.lattice.get(), index.get(),
                       DurableOptions(dir));
  ASSERT_TRUE(service.durability_status().ok());
  BatchResult batch = service.RunBatch({"incense"});
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.stats.wal_replayed, 0u);
}

TEST(DurableServiceTest, OversizedMutationIsRejectedWithoutPoisoning) {
  // A row that encodes past the WAL frame limit must fail BEFORE any
  // in-memory state changes — discovering it at append time, after the
  // table and index were patched, would force a poison.
  const std::string dir = FreshDir("oversized");
  ToyFixture fx;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       DurableOptions(dir));
  ASSERT_TRUE(service.durability_status().ok());
  const size_t before = fx.db->TotalTuples();
  EXPECT_EQ(service
                .ApplyMutation(Mutation::Insert(
                    "Color", {Value(int64_t{90}), Value("huge"),
                              Value(std::string(kWalMaxPayload + 1, 'x'))}))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fx.db->TotalTuples(), before);  // Nothing applied, no poison:
  EXPECT_TRUE(service.ApplyMutation(SampleStream()[0]).ok());
  EXPECT_TRUE(service.Checkpoint().ok());
}

TEST(DurableServiceTest, WalAppendFailurePoisonsWritesAndCheckpoints) {
  // Once an append fails after its in-memory apply, memory and log have
  // diverged: further writes, checkpoints (which would persist the
  // divergence as truth), and drains must all refuse with kDataLoss.
  const std::string dir = FreshDir("poison");
  ToyFixture fx;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       DurableOptions(dir));
  ASSERT_TRUE(service.durability_status().ok());
  ASSERT_TRUE(service.ApplyMutation(SampleStream()[0]).ok());
  {
    ScopedFaultInjection faults("storage.wal.append=unavailable,times=1");
    EXPECT_EQ(service.ApplyMutation(SampleStream()[1]).code(),
              StatusCode::kDataLoss);
  }
  // The fault is gone, but the poison is permanent.
  EXPECT_EQ(service.ApplyMutation(SampleStream()[3]).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(service.Checkpoint().code(), StatusCode::kDataLoss);
  EXPECT_EQ(service.Drain().code(), StatusCode::kDataLoss);
}

TEST(DurableServiceTest, IndexFingerprintMismatchIsDataLoss) {
  const std::string dir = FreshDir("fingerprint");
  {
    ToyFixture fx;
    DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                         DurableOptions(dir));
    ASSERT_TRUE(service.durability_status().ok());
    // Fresh vocabulary moves the dictionary fingerprint before checkpoint.
    ASSERT_TRUE(service
                    .ApplyMutation(Mutation::Insert(
                        "Color", {Value(int64_t{77}), Value("uniqueword"),
                                  Value("anotherfresh")}))
                    .ok());
    ASSERT_TRUE(service.Checkpoint().ok());
  }

  // "Recovery" over the WRONG catalog: a pristine toy fixture whose rebuilt
  // index cannot match the checkpoint fingerprint. The service must refuse
  // writes instead of compounding the divergence.
  ToyFixture fx;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       DurableOptions(dir));
  EXPECT_EQ(service.durability_status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(service
                .ApplyMutation(Mutation::Delete("Color", 0))
                .code(),
            StatusCode::kDataLoss);
  // Reads still serve (degraded but correct for the in-memory state).
  BatchResult batch = service.RunBatch({"incense"});
  EXPECT_TRUE(batch.status.ok());
}

}  // namespace
}  // namespace kwsdbg
