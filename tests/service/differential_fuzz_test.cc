// Differential fuzzer over the whole verdict pipeline: seeded random
// catalogs + keyword queries, asserting that all five traversal strategies,
// the RE baseline (the SQL-per-node oracle), and the concurrent
// DebugService produce identical A(K)/N(K)/MPAN sets. Any disagreement is
// a real bug in inference, caching, cancellation, or the service's
// threading — verdicts are ground truth and must not depend on the runner.
//
// Reproducibility: every failure prints the iteration seed and a minimized
// query. Re-run one case with
//   KWSDBG_FUZZ_SEED=<seed> KWSDBG_FUZZ_ITERS=1 ./differential_fuzz_test
// The default iteration count is CI-cheap; nightly/sanitizer runs raise it
// via KWSDBG_FUZZ_ITERS (see tests/run_sanitizers.sh and docs/testing.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/return_everything.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "datasets/ecommerce.h"
#include "datasets/query_generator.h"
#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "lattice/lattice_generator.h"
#include "service/debug_service.h"
#include "sql/executor.h"
#include "test_util.h"
#include "text/inverted_index.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}

/// One generated instance: catalog + lattice + index, all seeded.
struct FuzzCase {
  std::unique_ptr<Database> db;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
  std::unique_ptr<InvertedIndex> index;
};

FuzzCase BuildCase(uint64_t seed) {
  Rng rng(seed);
  EcommerceConfig config;
  config.seed = seed;
  config.num_items = static_cast<size_t>(rng.UniformRange(20, 80));
  const double null_rates[] = {0.0, 0.1, 0.3};
  config.null_color_rate = null_rates[rng.Uniform(3)];
  auto dataset = GenerateEcommerce(config);
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  FuzzCase fc;
  fc.db = std::move(dataset->db);
  fc.schema = std::move(dataset->schema);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(fc.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  fc.lattice = std::move(*lattice);
  fc.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*fc.db));
  return fc;
}

/// Checks one query across all runners. `seed` is the case's generator seed,
/// used to rebuild a bit-identical catalog for the out-of-core layer.
/// Returns a description of the first disagreement, or nullopt when every
/// runner agrees.
std::optional<std::string> Disagreement(const FuzzCase& fc, uint64_t seed,
                                        const std::string& query) {
  KeywordBinder binder(&fc.schema, fc.index.get(), /*copies=*/2,
                       /*max_interpretations=*/4);
  BindingResult bound = binder.Bind(query);

  // Layer 1: per interpretation, the five strategies must match the RE
  // oracle exactly (aliveness, MPANs, culprits).
  for (const KeywordBinding& binding : bound.interpretations) {
    PrunedLattice pl = PrunedLattice::Build(*fc.lattice, binding);
    if (pl.mtns().empty()) continue;
    auto run = [&](TraversalStrategy* strategy) {
      Executor executor(fc.db.get());
      QueryEvaluator evaluator(fc.db.get(), &executor, &pl, fc.index.get());
      auto result = strategy->Run(pl, &evaluator);
      KWSDBG_CHECK(result.ok()) << result.status().ToString();
      return testutil::Summarize(*result);
    };
    auto oracle_strategy = MakeReturnEverything();
    const auto oracle = run(oracle_strategy.get());
    for (TraversalKind kind : AllTraversalKinds()) {
      auto strategy = MakeStrategy(kind);
      const auto got = run(strategy.get());
      if (got != oracle) {
        std::ostringstream out;
        out << "strategy " << strategy->name() << " disagrees with RE on "
            << "binding " << binding.ToString(fc.schema);
        return out.str();
      }
    }
  }

  // Layer 2: the concurrent service must classify identically to a serial
  // debugger (same options, fresh caches) for the full report.
  std::string serial_sig;
  {
    NonAnswerDebugger serial(fc.db.get(), fc.lattice.get(), fc.index.get());
    auto report = serial.Debug(query);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    serial_sig = report->ClassificationSignature();
  }

  // Layer 2b: probe engine differential — the default run above used the
  // v3 flat indexes + batched prefetch pipeline; re-run with the v2
  // unordered_map engine and with batching alone disabled. All three must
  // classify bit-identically (the flat engine and the prefetch window must
  // never change a verdict, only its cost).
  {
    DebuggerOptions v2_options;
    v2_options.executor.flat_index = false;
    NonAnswerDebugger v2(fc.db.get(), fc.lattice.get(), fc.index.get(),
                         v2_options);
    auto report = v2.Debug(query);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    if (report->ClassificationSignature() != serial_sig) {
      return "v2 (unordered_map) engine classification differs from v3";
    }
    DebuggerOptions unbatched_options;
    unbatched_options.executor.batched_probe = false;
    NonAnswerDebugger unbatched(fc.db.get(), fc.lattice.get(),
                                fc.index.get(), unbatched_options);
    auto unbatched_report = unbatched.Debug(query);
    KWSDBG_CHECK(unbatched_report.ok())
        << unbatched_report.status().ToString();
    if (unbatched_report->ClassificationSignature() != serial_sig) {
      return "flat engine with batching off differs from batched run";
    }
  }
  // Layer 2c: out-of-core differential — rebuild the identical catalog
  // (generation is seed-deterministic), push every table through the buffer
  // pool and the posting lists onto disk, and require the serial debugger to
  // classify bit-identically. This is the spill analogue of 2b: paging must
  // only change cost, never a verdict. Mutation epochs ride along: a
  // SetValue + BumpEpoch on the spilled catalog must not leave stale pages
  // behind (the write-back/undo pair keeps contents identical).
  {
    FuzzCase spilled = BuildCase(seed);
    SpillOptions spill_options;
    spill_options.page_size = 512;
    Status st = spilled.db->ApplyMemoryBudget(1, spill_options);
    KWSDBG_CHECK(st.ok()) << st.ToString();
    KWSDBG_CHECK(spilled.db->AnySpilled());
    st = spilled.index->SpillToDisk("", /*cache_lists=*/8);
    KWSDBG_CHECK(st.ok()) << st.ToString();
    {
      NonAnswerDebugger cold(spilled.db.get(), spilled.lattice.get(),
                             spilled.index.get());
      auto report = cold.Debug(query);
      KWSDBG_CHECK(report.ok()) << report.status().ToString();
      if (report->ClassificationSignature() != serial_sig) {
        return "spilled (out-of-core) classification differs from resident";
      }
    }
    // Epoch interaction: flip one cell through the paged write path, bump,
    // flip it back, bump again. If any layer served a stale page or a stale
    // verdict, the final classification would diverge.
    Table* first = nullptr;
    for (const std::string& name : spilled.db->TableNames()) {
      Table* t = spilled.db->FindTable(name);
      if (t != nullptr && t->spilled() && t->num_rows() > 0 &&
          t->schema().column(0).type == DataType::kInt64) {
        first = t;
        break;
      }
    }
    if (first != nullptr) {
      const Value original = first->at(0, 0);
      st = first->SetValue(0, 0, Value(int64_t{-777}));
      KWSDBG_CHECK(st.ok()) << st.ToString();
      spilled.db->BumpEpoch();
      st = first->SetValue(0, 0, original);
      KWSDBG_CHECK(st.ok()) << st.ToString();
      spilled.db->BumpEpoch();
      NonAnswerDebugger after(spilled.db.get(), spilled.lattice.get(),
                              spilled.index.get());
      auto report = after.Debug(query);
      KWSDBG_CHECK(report.ok()) << report.status().ToString();
      if (report->ClassificationSignature() != serial_sig) {
        return "spilled classification differs after SetValue/BumpEpoch "
               "round-trip (stale page or stale verdict)";
      }
    }
  }

  // Layer 2d: adaptive traversal differential — a planner with forced
  // exploration (eps = 1) plus an observation-fed p_a model must classify
  // bit-identically. Two passes: the first runs cold, the second replays
  // against the warmed model (SBH reads learned per-level estimates).
  {
    DebuggerOptions adaptive_options;
    adaptive_options.adaptive = true;
    adaptive_options.adaptive_options.planner.explore_eps = 1.0;
    adaptive_options.adaptive_options.planner.seed = seed;
    NonAnswerDebugger adaptive(fc.db.get(), fc.lattice.get(), fc.index.get(),
                               adaptive_options);
    for (int pass = 0; pass < 2; ++pass) {
      auto report = adaptive.Debug(query);
      KWSDBG_CHECK(report.ok()) << report.status().ToString();
      if (report->ClassificationSignature() != serial_sig) {
        return std::string("adaptive (forced exploration) classification "
                           "differs from serial on pass ") +
               (pass == 0 ? "1 (cold model)" : "2 (warm model)");
      }
    }
  }

  ServiceOptions service_options;
  service_options.num_workers = 4;
  DebugService service(fc.db.get(), fc.lattice.get(), fc.index.get(),
                       service_options);
  // Submit the query four times in one batch: workers race on the shared
  // cache, and every copy must still classify identically.
  BatchResult batch = service.RunBatch({query, query, query, query});
  for (const QueryResult& r : batch.results) {
    if (!r.status.ok()) return "service error: " + r.status.ToString();
    if (r.report.ClassificationSignature() != serial_sig) {
      return "service classification differs from serial debugger (worker " +
             std::to_string(r.worker) + ")";
    }
  }
  return std::nullopt;
}

/// Greedy keyword-dropping minimization: keep removing words while the
/// disagreement persists.
std::string Minimize(const FuzzCase& fc, uint64_t seed, std::string query) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::istringstream in(query);
    std::vector<std::string> words;
    for (std::string w; in >> w;) words.push_back(w);
    if (words.size() <= 1) break;
    for (size_t drop = 0; drop < words.size(); ++drop) {
      std::string candidate;
      for (size_t i = 0; i < words.size(); ++i) {
        if (i == drop) continue;
        if (!candidate.empty()) candidate += ' ';
        candidate += words[i];
      }
      if (Disagreement(fc, seed, candidate).has_value()) {
        query = candidate;
        shrunk = true;
        break;
      }
    }
  }
  return query;
}

// ---- Chaos mutation layer ----

/// One seeded random write against the fuzz catalog. Insert payloads draw
/// their strings from `vocab` (sampled index terms) plus the occasional
/// fresh word, so mutations both extend existing posting lists and grow the
/// vocabulary.
Mutation RandomMutation(Rng* rng, const FuzzCase& fc,
                        const std::vector<std::string>& vocab) {
  const std::vector<std::string> names = fc.db->TableNames();
  const std::string& tname = names[rng->Uniform(names.size())];
  Table* t = fc.db->FindTable(tname);
  uint64_t kind = rng->Uniform(3);
  if (t->live_rows() == 0) kind = 0;  // nothing left to delete or update

  auto random_value = [&](DataType type) {
    switch (type) {
      case DataType::kInt64:
        return Value(static_cast<int64_t>(rng->Uniform(64)));
      case DataType::kDouble:
        return Value(static_cast<double>(rng->Uniform(100)) * 0.25);
      case DataType::kString: {
        std::string s = vocab[rng->Uniform(vocab.size())];
        if (rng->Bernoulli(0.3)) s += ' ' + vocab[rng->Uniform(vocab.size())];
        if (rng->Bernoulli(0.1)) s += " chaosword" + std::to_string(rng->Uniform(8));
        return Value(s);
      }
    }
    return Value();
  };

  if (kind == 0) {
    Tuple row;
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      row.push_back(random_value(t->schema().column(c).type));
    }
    return Mutation::Insert(tname, std::move(row));
  }
  // Pick a live row (linear probe from a random start; a live one exists).
  size_t row = rng->Uniform(t->num_rows());
  while (t->deleted(row)) row = (row + 1) % t->num_rows();
  if (kind == 1) return Mutation::Delete(tname, row);
  const size_t col = rng->Uniform(t->schema().num_columns());
  return Mutation::Update(tname, row, col,
                          random_value(t->schema().column(col).type));
}

// Seeded read/write chaos: a mutable service absorbs random writes between
// queries (with `storage.mutation.apply` faults armed part of the time),
// and after every write burst each query's classification must equal a
// fresh serial debugger whose index is REBUILT from the mutated database.
// Any stale verdict, unpatched posting list, or missed eviction diverges
// here. Repro and volume knobs: KWSDBG_FUZZ_SEED / KWSDBG_FUZZ_ITERS /
// KWSDBG_MUTATION_RATE (writes per query, default 3).
TEST(DifferentialFuzzTest, ChaosMutationsNeverServeStaleVerdicts) {
  const size_t iters = EnvSize("KWSDBG_FUZZ_ITERS", 8);
  const uint64_t base_seed = EnvSize("KWSDBG_FUZZ_SEED", 4321);
  const size_t mutation_rate = EnvSize("KWSDBG_MUTATION_RATE", 3);
  std::printf("chaos: %zu iteration(s), base seed %llu, %zu write(s)/query "
              "(KWSDBG_FUZZ_ITERS / KWSDBG_FUZZ_SEED / KWSDBG_MUTATION_RATE "
              "to override)\n",
              iters, static_cast<unsigned long long>(base_seed),
              mutation_rate);

  for (size_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    FuzzCase fc = BuildCase(seed);
    Rng rng(seed ^ 0xC4A05u);
    std::vector<std::string> vocab = fc.index->Terms();
    if (vocab.size() > 32) vocab.resize(32);
    ASSERT_FALSE(vocab.empty());

    // Every other iteration arms the mutation fault point: a failed Apply
    // must be all-or-nothing, which the rebuild oracle below verifies.
    std::unique_ptr<ScopedFaultInjection> faults;
    if (iter % 2 == 1) {
      faults = std::make_unique<ScopedFaultInjection>(
          "storage.mutation.apply=unavailable,p=0.3,seed=" +
          std::to_string(seed));
    }

    // The service runs in adaptive mode with a forced-exploration planner:
    // every write bumps a data epoch, so the per-shard models keep decaying
    // and re-learning mid-stream — the rebuilt-world oracle below catches
    // any verdict the model-fed traversal gets wrong under drift.
    ServiceOptions service_options;
    service_options.num_workers = 2;
    service_options.num_shards = 2;
    service_options.debugger.adaptive = true;
    service_options.debugger.adaptive_options.planner.explore_eps = 1.0;
    service_options.debugger.adaptive_options.planner.seed = seed;
    DebugService service(fc.db.get(), fc.lattice.get(), fc.index.get(),
                         service_options);
    ASSERT_NE(service.mutator(), nullptr);

    QueryGeneratorConfig gconfig;
    gconfig.seed = seed;
    gconfig.min_keywords = 1;
    gconfig.max_keywords = 2;
    RandomQueryGenerator generator(fc.index.get(), gconfig);

    size_t applied = 0;
    for (size_t q = 0; q < 4; ++q) {
      for (size_t m = 0; m < mutation_rate; ++m) {
        const Mutation mutation = RandomMutation(&rng, fc, vocab);
        Status st = service.ApplyMutation(mutation);
        // Injected faults and races with earlier deletes are expected;
        // anything else is a mutator bug.
        if (st.ok()) {
          ++applied;
        } else {
          ASSERT_TRUE(st.code() == StatusCode::kUnavailable ||
                      st.code() == StatusCode::kInvalidArgument ||
                      st.code() == StatusCode::kFailedPrecondition ||
                      st.code() == StatusCode::kNotFound)
              << "seed " << seed << ": " << st.ToString();
        }
      }

      const std::string query = generator.Next();
      // Fresh-world oracle: serial debugger + index rebuilt from scratch.
      std::string want;
      {
        const InvertedIndex rebuilt = InvertedIndex::Build(*fc.db);
        NonAnswerDebugger serial(fc.db.get(), fc.lattice.get(), &rebuilt);
        auto report = serial.Debug(query);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        want = report->ClassificationSignature();
      }
      BatchResult batch = service.RunBatch({query, query});
      ASSERT_TRUE(batch.status.ok());
      for (const QueryResult& r : batch.results) {
        ASSERT_TRUE(r.status.ok()) << r.status.ToString();
        ASSERT_EQ(r.report.ClassificationSignature(), want)
            << "stale verdict after live writes: iteration " << iter
            << ", seed " << seed << ", query \"" << query << "\" ("
            << applied << " mutation(s) applied; repro: KWSDBG_FUZZ_SEED="
            << seed << " KWSDBG_FUZZ_ITERS=1 KWSDBG_MUTATION_RATE="
            << mutation_rate << ")";
      }
    }
    EXPECT_GT(applied, 0u) << "seed " << seed;
  }
}

TEST(DifferentialFuzzTest, AllRunnersAgreeOnRandomInstances) {
  const size_t iters = EnvSize("KWSDBG_FUZZ_ITERS", 25);
  const uint64_t base_seed = EnvSize("KWSDBG_FUZZ_SEED", 1234);
  std::printf("fuzz: %zu iteration(s), base seed %llu "
              "(KWSDBG_FUZZ_ITERS / KWSDBG_FUZZ_SEED to override)\n",
              iters, static_cast<unsigned long long>(base_seed));

  for (size_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    FuzzCase fc = BuildCase(seed);
    Rng rng(seed ^ 0xF00Du);
    QueryGeneratorConfig gconfig;
    gconfig.seed = seed;
    gconfig.min_keywords = 1;
    gconfig.max_keywords = 3;
    RandomQueryGenerator generator(fc.index.get(), gconfig);
    for (size_t q = 0; q < 3; ++q) {
      std::string query = generator.Next();
      // Occasionally splice in a vocabulary miss (exercises the
      // missing-keyword early-out) or the paper's frontier query.
      if (rng.Bernoulli(0.15)) query += " zzzunbound";
      if (rng.Bernoulli(0.15)) query = "saffron candle";
      std::optional<std::string> failure = Disagreement(fc, seed, query);
      if (failure.has_value()) {
        const std::string minimized = Minimize(fc, seed, query);
        FAIL() << "iteration " << iter << ", seed " << seed << ", query \""
               << query << "\": " << *failure
               << "\n  minimized repro: KWSDBG_FUZZ_SEED=" << seed
               << " KWSDBG_FUZZ_ITERS=1, query \"" << minimized << "\"";
      }
    }
  }
}

}  // namespace
}  // namespace kwsdbg
