// Sharded DebugService behavior: canonical-label routing, serial-vs-sharded
// classification parity under every traversal strategy, cross-shard work
// stealing, home-partition cache residency for stolen queries, and the
// asynchronous Submit/WaitIdle path the open-loop load harness drives.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datasets/dblife.h"
#include "datasets/ecommerce.h"
#include "datasets/query_generator.h"
#include "lattice/lattice_generator.h"
#include "service/debug_service.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

constexpr TraversalKind kAllStrategies[] = {
    TraversalKind::kBottomUp, TraversalKind::kTopDown,
    TraversalKind::kBottomUpWithReuse, TraversalKind::kTopDownWithReuse,
    TraversalKind::kScoreBased};

TEST(HomeShardTest, DeterministicAndInRange) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{5}, size_t{8}}) {
    for (const char* q : {"saffron candle", "red", "a b c", ""}) {
      const size_t home = DebugService::HomeShard(q, shards);
      EXPECT_LT(home, shards);
      EXPECT_EQ(home, DebugService::HomeShard(q, shards));
    }
  }
  EXPECT_EQ(DebugService::HomeShard("anything", 1), 0u);
}

TEST(HomeShardTest, CanonicalLabelIgnoresOrderCaseAndDuplicates) {
  // Queries with the same keyword multiset share every verdict key they can
  // generate, so they must route to the same shard regardless of surface
  // form (the tokenizer lowercases and TokenizeUnique deduplicates).
  constexpr size_t kShards = 8;
  const size_t home = DebugService::HomeShard("saffron candle", kShards);
  EXPECT_EQ(DebugService::HomeShard("candle saffron", kShards), home);
  EXPECT_EQ(DebugService::HomeShard("Saffron CANDLE", kShards), home);
  EXPECT_EQ(DebugService::HomeShard("candle saffron candle", kShards), home);
  EXPECT_EQ(DebugService::HomeShard("saffron, candle!", kShards), home);
}

TEST(HomeShardTest, SpreadsDistinctLabels) {
  constexpr size_t kShards = 8;
  std::vector<size_t> counts(kShards, 0);
  for (int i = 0; i < 4096; ++i) {
    ++counts[DebugService::HomeShard("kw" + std::to_string(i), kShards)];
  }
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], 4096u / kShards / 2) << "shard " << s;
    EXPECT_LT(counts[s], 4096u / kShards * 2) << "shard " << s;
  }
}

/// Serial reference signatures vs. a sharded service run, one strategy.
void ExpectParity(const Database* db, const Lattice* lattice,
                  const InvertedIndex* index,
                  const std::vector<std::string>& queries,
                  TraversalKind strategy) {
  DebuggerOptions debugger_options;
  debugger_options.strategy = strategy;

  std::vector<std::string> serial_sigs;
  {
    NonAnswerDebugger serial(db, lattice, index, debugger_options);
    for (const std::string& q : queries) {
      auto report = serial.Debug(q);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      serial_sigs.push_back(report->ClassificationSignature());
    }
  }

  ServiceOptions options;
  options.num_workers = 4;
  options.num_shards = 4;
  options.work_stealing = true;
  options.handoff_batch = 2;
  options.debugger = debugger_options;
  DebugService service(db, lattice, index, options);
  // Two passes: cold partitions, then warm (verdicts answered from the
  // per-shard tiers) — both must match the serial classifications.
  for (int pass = 0; pass < 2; ++pass) {
    BatchResult batch = service.RunBatch(queries);
    ASSERT_TRUE(batch.status.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryResult& r = batch.results[i];
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_EQ(r.report.ClassificationSignature(), serial_sigs[i])
          << TraversalKindName(strategy) << " pass " << pass << " query \""
          << queries[i] << "\"";
    }
  }
}

TEST(ShardedParityTest, EcommerceAllStrategies) {
  EcommerceConfig config;
  config.num_items = 150;
  auto dataset = GenerateEcommerce(config);
  ASSERT_TRUE(dataset.ok());
  InvertedIndex index = InvertedIndex::Build(*dataset->db);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(dataset->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  QueryGeneratorConfig gconfig;
  gconfig.min_keywords = 1;
  gconfig.max_keywords = 2;
  RandomQueryGenerator generator(&index, gconfig);
  std::vector<std::string> queries = generator.Batch(6);
  queries.push_back("saffron candle");  // always cover a dead-MTN frontier
  for (TraversalKind strategy : kAllStrategies) {
    ExpectParity(dataset->db.get(), lattice->get(), &index, queries,
                 strategy);
  }
}

TEST(ShardedParityTest, DblifeAllStrategies) {
  auto dataset = GenerateDblife(DblifeConfig{}.Scaled(0.05));
  ASSERT_TRUE(dataset.ok());
  InvertedIndex index = InvertedIndex::Build(*dataset->db);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;  // level-3 lattice
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(dataset->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  QueryGeneratorConfig gconfig;
  gconfig.min_keywords = 2;
  gconfig.max_keywords = 3;
  RandomQueryGenerator generator(&index, gconfig);
  const std::vector<std::string> queries = generator.Batch(6);
  for (TraversalKind strategy : kAllStrategies) {
    ExpectParity(dataset->db.get(), lattice->get(), &index, queries,
                 strategy);
  }
}

/// Queries from the toy vocabulary that all route to one home shard under
/// `shards` — the adversarial skew for the stealing tests.
std::vector<std::string> SkewedQueries(size_t shards, size_t count,
                                       size_t* home_out) {
  const std::vector<std::string> vocabulary = {
      "saffron", "candle", "red", "vanilla", "oil", "scented", "yellow",
      "wax", "holder", "blue"};
  // Pick the home shard of the first two-keyword combination, then keep
  // only combinations sharing it.
  std::vector<std::string> out;
  size_t home = 0;
  bool have_home = false;
  for (size_t i = 0; i < vocabulary.size() && out.size() < count; ++i) {
    for (size_t j = i + 1; j < vocabulary.size() && out.size() < count; ++j) {
      const std::string q = vocabulary[i] + " " + vocabulary[j];
      const size_t h = DebugService::HomeShard(q, shards);
      if (!have_home) {
        home = h;
        have_home = true;
      }
      if (h == home) out.push_back(q);
    }
  }
  *home_out = home;
  return out;
}

TEST(WorkStealingTest, SkewedWorkloadIsStolenAcrossShards) {
  testutil::ToyFixture fx;
  constexpr size_t kShards = 4;
  size_t home = 0;
  const std::vector<std::string> queries =
      SkewedQueries(kShards, 12, &home);
  ASSERT_GE(queries.size(), 4u) << "need a few same-shard queries";

  ServiceOptions options;
  options.num_workers = kShards;
  options.num_shards = kShards;
  options.work_stealing = true;
  options.handoff_batch = 1;  // one query per pickup maximizes steal windows
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);

  // Stealing is a race by design: retry a few rounds until some off-home
  // worker stole (with every query routed to one shard and handoff_batch 1,
  // three idle workers contend for the backlog every round).
  size_t steals = 0;
  for (int attempt = 0; attempt < 8 && steals == 0; ++attempt) {
    BatchResult batch = service.RunBatch(queries);
    ASSERT_TRUE(batch.status.ok());
    for (const QueryResult& r : batch.results) {
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_EQ(r.shard, home) << "skew premise violated";
      if (r.stolen) ++steals;
    }
  }
  EXPECT_GT(steals, 0u)
      << "12 same-shard queries, 4 single-shard workers, 8 rounds: an idle "
         "worker never stole";
}

TEST(WorkStealingTest, DisabledStealingKeepsWorkOnHomeShard) {
  testutil::ToyFixture fx;
  constexpr size_t kShards = 2;
  size_t home = 0;
  const std::vector<std::string> queries = SkewedQueries(kShards, 8, &home);

  ServiceOptions options;
  options.num_workers = kShards;
  options.num_shards = kShards;
  options.work_stealing = false;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch(queries);
  ASSERT_TRUE(batch.status.ok());
  for (const QueryResult& r : batch.results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_FALSE(r.stolen);
    EXPECT_EQ(r.worker % kShards, home)
        << "with stealing off only the home shard's worker may serve";
  }
  EXPECT_EQ(batch.stats.steals, 0u);
}

TEST(WorkStealingTest, StolenQueriesWriteHomeShardPartition) {
  testutil::ToyFixture fx;
  constexpr size_t kShards = 4;
  size_t home = 0;
  const std::vector<std::string> queries = SkewedQueries(kShards, 10, &home);

  ServiceOptions options;
  options.num_workers = kShards;
  options.num_shards = kShards;
  options.work_stealing = true;
  options.handoff_batch = 1;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch(queries);
  ASSERT_TRUE(batch.status.ok());
  // Every verdict — including ones computed by stealing workers — must land
  // in the home shard's partition; the other partitions stay empty. This is
  // the residency invariant that makes label routing pay off.
  for (size_t s = 0; s < kShards; ++s) {
    const VerdictCacheStats cache = service.shard_cache(s)->stats();
    if (s == home) {
      EXPECT_GT(cache.insertions, 0u) << "home partition never written";
    } else {
      EXPECT_EQ(cache.insertions, 0u)
          << "shard " << s << " cached a verdict for a query homed on "
          << home;
    }
  }
}

TEST(SubmitTest, OpenLoopSubmissionsCompleteAndMatchBatch) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 3;
  options.num_shards = 3;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  const std::vector<std::string> queries = {
      "saffron candle", "red candle", "vanilla oil", "scented candle",
      "saffron candle", "red candle"};

  // Reference signatures from the synchronous path.
  BatchResult reference = service.RunBatch(queries);
  ASSERT_TRUE(reference.status.ok());

  std::atomic<size_t> completions{0};
  std::vector<QueryResult> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status accepted = service.Submit(
        queries[i], /*deadline_millis=*/0, [&results, &completions, i](QueryResult r) {
          results[i] = std::move(r);
          completions.fetch_add(1);
        });
    ASSERT_TRUE(accepted.ok()) << accepted.ToString();
  }
  service.WaitIdle();
  ASSERT_EQ(completions.load(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
    EXPECT_EQ(results[i].report.ClassificationSignature(),
              reference.results[i].report.ClassificationSignature())
        << "Submit and RunBatch disagree on \"" << queries[i] << "\"";
    EXPECT_EQ(results[i].shard,
              DebugService::HomeShard(queries[i], service.num_shards()));
  }
}

TEST(SubmitTest, OverloadedShardShedsWithRetryableStatus) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 1;
  options.num_shards = 1;
  options.max_queue_depth = 1;
  options.work_stealing = false;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  std::atomic<size_t> completions{0};
  size_t accepted = 0;
  size_t shed = 0;
  constexpr size_t kSubmits = 200;
  for (size_t i = 0; i < kSubmits; ++i) {
    const Status s = service.Submit(
        "saffron candle", /*deadline_millis=*/0,
        [&completions](QueryResult) { completions.fetch_add(1); });
    if (s.ok()) {
      ++accepted;
    } else {
      ++shed;
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      EXPECT_TRUE(s.IsRetryable());
      EXPECT_NE(s.message().find("admission control"), std::string::npos);
    }
  }
  service.WaitIdle();
  EXPECT_EQ(accepted + shed, kSubmits);
  EXPECT_EQ(completions.load(), accepted)
      << "done must run exactly once per accepted submit, never for shed";
  EXPECT_GT(shed, 0u)
      << "a depth-1 queue on one worker cannot absorb a 200-submit burst";
}

TEST(ShardedServiceTest, ShardCountClampsAndDefaults) {
  testutil::ToyFixture fx;
  {
    ServiceOptions options;
    options.num_workers = 2;
    options.num_shards = 8;  // clamped: a worker-less shard only drains by theft
    DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                         options);
    EXPECT_EQ(service.num_shards(), 2u);
  }
  {
    ServiceOptions options;
    options.num_workers = 3;
    options.num_shards = 0;  // 0 = one shard per worker
    DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                         options);
    EXPECT_EQ(service.num_shards(), 3u);
  }
  {
    DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(), {});
    EXPECT_EQ(service.num_shards(), 1u) << "default reproduces the "
                                           "pre-sharding service";
  }
}

TEST(ShardedServiceTest, ShardSnapshotAccountsEveryQuery) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 4;
  options.num_shards = 4;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  std::vector<std::string> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back("kw" + std::to_string(i) + " candle");
  }
  BatchResult batch = service.RunBatch(queries);
  ASSERT_TRUE(batch.status.ok());
  ASSERT_EQ(batch.stats.shards.size(), 4u);
  size_t routed = 0;
  size_t executed = 0;
  for (const ShardStats& s : batch.stats.shards) {
    routed += s.routed;
    executed += s.executed;
    EXPECT_EQ(s.workers, 1u);
  }
  EXPECT_EQ(routed, queries.size());
  EXPECT_EQ(executed, queries.size());
  // The aggregate shared_cache is the sum over partitions.
  size_t insertions = 0;
  for (const ShardStats& s : batch.stats.shards) {
    insertions += s.cache.insertions;
  }
  EXPECT_EQ(batch.stats.shared_cache.insertions, insertions);
}

}  // namespace
}  // namespace kwsdbg
