// Regression tests for the two ComputeServiceStats correctness rules plus
// edge-case batches (empty / single-query / all-shed / shedding-heavy
// chaos). Both bugs reproduced before the fix:
//   * shed queries (never ran, exec_millis == 0) were pushed into the
//     latency sample and the mean-queue-wait denominator, dragging
//     p50/p95 toward zero exactly when the service was overloaded;
//   * queries_per_second divided by a raw wall_millis that rounds to 0 for
//     sub-resolution batches, reporting 0 QPS and slipping through
//     ">= floor" bench gates vacuously.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/debug_service.h"
#include "service/service_json.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

QueryResult Ran(double exec_millis, double queue_millis = 1.0) {
  QueryResult r;
  r.keyword_query = "ran";
  r.exec_millis = exec_millis;
  r.queue_millis = queue_millis;
  return r;
}

QueryResult Shed() {
  QueryResult r;
  r.keyword_query = "shed";
  r.shed = true;
  r.status = Status::ResourceExhausted("query shed by admission control");
  // Shed at enqueue: never picked up, never ran.
  r.exec_millis = 0;
  r.queue_millis = 0;
  return r;
}

TEST(ComputeServiceStatsTest, EmptyBatchIsAllZero) {
  const ServiceStats stats = ComputeServiceStats({}, /*wall_millis=*/5.0);
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queries_per_second, 0.0);
  EXPECT_EQ(stats.p50_millis, 0.0);
  EXPECT_EQ(stats.p999_millis, 0.0);
  EXPECT_EQ(stats.mean_queue_millis, 0.0);
}

TEST(ComputeServiceStatsTest, SingleQueryBatch) {
  const ServiceStats stats =
      ComputeServiceStats({Ran(7.0, 2.0)}, /*wall_millis=*/10.0);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_DOUBLE_EQ(stats.p50_millis, 7.0);
  EXPECT_DOUBLE_EQ(stats.p95_millis, 7.0);
  EXPECT_DOUBLE_EQ(stats.p99_millis, 7.0);
  EXPECT_DOUBLE_EQ(stats.p999_millis, 7.0);
  EXPECT_DOUBLE_EQ(stats.max_millis, 7.0);
  EXPECT_DOUBLE_EQ(stats.mean_queue_millis, 2.0);
  EXPECT_DOUBLE_EQ(stats.queries_per_second, 100.0);
}

// Satellite fix: a sub-resolution wall time must not zero out throughput.
// Before the fix wall_millis == 0 reported queries_per_second == 0, which
// passed through ">= 0" assertions and made QPS-floor gates vacuous.
TEST(ComputeServiceStatsTest, ZeroWallTimeStillReportsPositiveQps) {
  const ServiceStats stats =
      ComputeServiceStats({Ran(0.0)}, /*wall_millis=*/0.0);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_GT(stats.queries_per_second, 0.0)
      << "QPS must be finite and positive even when the batch completes "
         "inside the timer's resolution";
}

// Satellite fix: shed queries never ran, so their zero exec times must not
// enter the latency sample. Before the fix this batch reported p50 == 0.
TEST(ComputeServiceStatsTest, ShedQueriesExcludedFromLatencySample) {
  const std::vector<QueryResult> results = {
      Ran(10.0, 3.0), Shed(), Ran(20.0, 6.0), Shed(), Ran(30.0, 9.0), Shed()};
  const ServiceStats stats = ComputeServiceStats(results, 100.0);
  EXPECT_EQ(stats.queries, 6u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.failed, 3u) << "shed queries are failed (retryable)";
  // Percentiles over {10, 20, 30} only — the broken version computed them
  // over {0, 0, 0, 10, 20, 30} and reported p50 == 0.
  EXPECT_DOUBLE_EQ(stats.p50_millis, 20.0);
  EXPECT_DOUBLE_EQ(stats.max_millis, 30.0);
  // Mean queue wait over ran queries only: (3 + 6 + 9) / 3, not / 6.
  EXPECT_DOUBLE_EQ(stats.mean_queue_millis, 6.0);
}

TEST(ComputeServiceStatsTest, AllShedBatch) {
  const std::vector<QueryResult> results = {Shed(), Shed(), Shed()};
  const ServiceStats stats = ComputeServiceStats(results, 50.0);
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.failed, 3u);
  // No query ran: the latency distribution is empty, not zero-valued.
  EXPECT_EQ(stats.p50_millis, 0.0);
  EXPECT_EQ(stats.p999_millis, 0.0);
  EXPECT_EQ(stats.max_millis, 0.0);
  EXPECT_EQ(stats.mean_queue_millis, 0.0);
  EXPECT_GT(stats.queries_per_second, 0.0);
}

// Chaos batch: a shedding-heavy interleaving must report the same latency
// distribution as the same batch with the shed entries filtered out.
TEST(ComputeServiceStatsTest, ChaosBatchMatchesFilteredBatch) {
  std::vector<QueryResult> chaos;
  std::vector<QueryResult> filtered;
  for (int i = 0; i < 200; ++i) {
    if (i % 3 != 0) {  // two thirds shed, adversarially interleaved
      chaos.push_back(Shed());
      continue;
    }
    QueryResult r = Ran(1.0 + static_cast<double>(i % 37),
                        0.5 * static_cast<double>(i % 11));
    chaos.push_back(r);
    filtered.push_back(r);
  }
  const ServiceStats chaos_stats = ComputeServiceStats(chaos, 500.0);
  const ServiceStats clean_stats = ComputeServiceStats(filtered, 500.0);
  EXPECT_DOUBLE_EQ(chaos_stats.p50_millis, clean_stats.p50_millis);
  EXPECT_DOUBLE_EQ(chaos_stats.p95_millis, clean_stats.p95_millis);
  EXPECT_DOUBLE_EQ(chaos_stats.p99_millis, clean_stats.p99_millis);
  EXPECT_DOUBLE_EQ(chaos_stats.p999_millis, clean_stats.p999_millis);
  EXPECT_DOUBLE_EQ(chaos_stats.max_millis, clean_stats.max_millis);
  EXPECT_DOUBLE_EQ(chaos_stats.mean_queue_millis,
                   clean_stats.mean_queue_millis);
  EXPECT_EQ(chaos_stats.shed, chaos.size() - filtered.size());
}

TEST(ComputeServiceStatsTest, PercentilesAreOrdered) {
  std::vector<QueryResult> results;
  for (int i = 1; i <= 1000; ++i) results.push_back(Ran(i));
  const ServiceStats stats = ComputeServiceStats(results, 1000.0);
  EXPECT_LE(stats.p50_millis, stats.p95_millis);
  EXPECT_LE(stats.p95_millis, stats.p99_millis);
  EXPECT_LE(stats.p99_millis, stats.p999_millis);
  EXPECT_LE(stats.p999_millis, stats.max_millis);
  EXPECT_GT(stats.p999_millis, stats.p99_millis)
      << "with 1000 distinct samples p999 must resolve past p99";
}

// End-to-end: RunBatch's aggregate obeys both rules through the service.
TEST(ServiceStatsIntegrationTest, RunBatchAggregateObeysBothRules) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  std::vector<std::string> queries(8, "saffron candle");
  BatchResult batch = service.RunBatch(queries);
  ASSERT_TRUE(batch.status.ok());
  ASSERT_GT(batch.stats.shed, 0u) << "queue depth 1 must shed an 8-query "
                                     "burst on a single worker";
  EXPECT_GT(batch.stats.queries_per_second, 0.0);
  // The aggregate percentiles must equal percentiles recomputed over the
  // ran queries only.
  std::vector<QueryResult> ran;
  for (const QueryResult& r : batch.results) {
    if (!r.shed) ran.push_back(r);
  }
  ASSERT_FALSE(ran.empty());
  const ServiceStats expected =
      ComputeServiceStats(ran, batch.stats.wall_millis);
  EXPECT_DOUBLE_EQ(batch.stats.p50_millis, expected.p50_millis);
  EXPECT_DOUBLE_EQ(batch.stats.p999_millis, expected.p999_millis);
  EXPECT_DOUBLE_EQ(batch.stats.mean_queue_millis,
                   expected.mean_queue_millis);
  EXPECT_GT(batch.stats.p50_millis, 0.0)
      << "ran queries have nonzero exec time; a zero p50 means shed "
         "entries leaked back into the sample";
}

TEST(ServiceStatsIntegrationTest, JsonCarriesShardAndTailFields) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch({"saffron candle", "red candle"});
  const std::string stats_json = ServiceStatsToJson(batch.stats);
  for (const char* field :
       {"\"p999_millis\":", "\"steals\":", "\"num_shards\":2",
        "\"shards\":[", "\"routed\":", "\"executed\":", "\"stolen_away\":",
        "\"local_cache_hits\":", "\"remote_cache_hits\":",
        "\"max_queue_depth\":"}) {
    EXPECT_NE(stats_json.find(field), std::string::npos) << field;
  }
  const std::string batch_json =
      BatchResultToJson(batch, /*include_reports=*/false);
  for (const char* field : {"\"shard\":", "\"stolen\":"}) {
    EXPECT_NE(batch_json.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace kwsdbg
