// Core DebugService behavior: batch execution over the worker pool, the
// process-wide verdict tier, deadline-truncated reports, and the JSON
// export. Classification parity at scale is gated separately by
// bench/concurrent_service_workload and the differential fuzzer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "debugger/report_json.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

std::vector<std::string> ToyQueries() {
  return {"saffron candle", "red candle", "vanilla oil", "scented candle"};
}

TEST(DebugServiceTest, BatchMatchesSerialDebugger) {
  testutil::ToyFixture fx;
  const std::vector<std::string> queries = ToyQueries();

  std::vector<std::string> serial_sigs;
  {
    NonAnswerDebugger serial(fx.db.get(), fx.lattice.get(), fx.index.get());
    for (const std::string& q : queries) {
      auto report = serial.Debug(q);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      serial_sigs.push_back(report->ClassificationSignature());
    }
  }

  ServiceOptions options;
  options.num_workers = 3;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch(queries);
  ASSERT_EQ(batch.results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult& r = batch.results[i];
    EXPECT_EQ(r.keyword_query, queries[i]);  // Input order preserved.
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.report.truncated);
    EXPECT_EQ(r.report.ClassificationSignature(), serial_sigs[i])
        << "query \"" << queries[i] << "\"";
    EXPECT_GE(r.exec_millis, 0.0);
    EXPECT_LT(r.worker, options.num_workers);
  }
  EXPECT_EQ(batch.stats.queries, queries.size());
  EXPECT_EQ(batch.stats.failed, 0u);
  EXPECT_EQ(batch.stats.truncated, 0u);
  EXPECT_GT(batch.stats.wall_millis, 0.0);
  EXPECT_GE(batch.stats.p99_millis, batch.stats.p50_millis);
}

TEST(DebugServiceTest, SharedCacheWarmsAcrossBatches) {
  testutil::ToyFixture fx;
  const std::vector<std::string> queries = ToyQueries();
  ServiceOptions options;
  options.num_workers = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);

  BatchResult cold = service.RunBatch(queries);
  ASSERT_EQ(cold.stats.failed, 0u);
  EXPECT_GT(cold.stats.sql_queries, 0u);

  // Identical batch, warm shared tier: every verdict is a cache hit, even
  // though different workers may serve the queries this time.
  BatchResult warm = service.RunBatch(queries);
  ASSERT_EQ(warm.stats.failed, 0u);
  EXPECT_EQ(warm.stats.sql_queries, 0u)
      << "warm batch should answer every verdict from the shared tier";
  EXPECT_GT(warm.stats.cache_hits, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(warm.results[i].report.ClassificationSignature(),
              cold.results[i].report.ClassificationSignature());
  }
}

TEST(DebugServiceTest, DeadlineTruncatesInsteadOfFailing) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 2;
  // A degenerate budget: expired before the first frontier. Every query
  // must still return OK with a (possibly empty) truncated report.
  options.default_deadline_millis = 1e-6;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch(ToyQueries());
  for (const QueryResult& r : batch.results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.report.truncated);
    // Truncation never fabricates verdicts: anything reported must also be
    // reported by an unbounded run (subset check via full run).
  }
  EXPECT_EQ(batch.stats.truncated, batch.stats.queries);

  // The same batch without a deadline completes fully.
  BatchResult full = service.RunBatch(ToyQueries(), /*deadline_millis=*/0);
  for (const QueryResult& r : full.results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_FALSE(r.report.truncated);
  }
}

TEST(DebugServiceTest, TruncatedReportsAreVerdictSubsets) {
  testutil::ToyFixture fx;
  // Serial debugger with an immediate deadline vs. unbounded: the truncated
  // report's answers/non-answers must be a subset of the full ones.
  DebuggerOptions bounded;
  bounded.deadline_millis = 1e-6;
  NonAnswerDebugger truncated_dbg(fx.db.get(), fx.lattice.get(),
                                  fx.index.get(), bounded);
  NonAnswerDebugger full_dbg(fx.db.get(), fx.lattice.get(), fx.index.get());
  for (const std::string& q : ToyQueries()) {
    auto truncated = truncated_dbg.Debug(q);
    auto full = full_dbg.Debug(q);
    ASSERT_TRUE(truncated.ok() && full.ok());
    EXPECT_TRUE(truncated->truncated);
    EXPECT_FALSE(full->truncated);
    EXPECT_LE(truncated->TotalAnswers(), full->TotalAnswers());
    EXPECT_LE(truncated->TotalNonAnswers(), full->TotalNonAnswers());
    // Every network the truncated run classified appears identically in
    // the full run (no fabricated or flipped verdicts).
    for (const auto& interp : truncated->interpretations) {
      for (const auto& ans : interp.answers) {
        bool found = false;
        for (const auto& fi : full->interpretations) {
          for (const auto& fans : fi.answers) {
            if (fi.binding == interp.binding &&
                fans.query.network == ans.query.network) {
              found = true;
            }
          }
        }
        EXPECT_TRUE(found) << "truncated run invented answer "
                           << ans.query.network;
      }
      for (const auto& na : interp.non_answers) {
        bool found = false;
        for (const auto& fi : full->interpretations) {
          for (const auto& fna : fi.non_answers) {
            if (fi.binding == interp.binding &&
                fna.query.network == na.query.network) {
              found = true;
            }
          }
        }
        EXPECT_TRUE(found) << "truncated run invented non-answer "
                           << na.query.network;
      }
    }
  }
}

TEST(DebugServiceTest, JsonExportCarriesServiceFields) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch({"saffron candle"});
  const std::string stats_json = ServiceStatsToJson(batch.stats);
  for (const char* field :
       {"\"queries\":", "\"queries_per_second\":", "\"p50_millis\":",
        "\"p95_millis\":", "\"p99_millis\":", "\"mean_queue_millis\":",
        "\"shared_cache\":"}) {
    EXPECT_NE(stats_json.find(field), std::string::npos) << field;
  }
  const std::string batch_json =
      BatchResultToJson(batch, /*include_reports=*/true);
  for (const char* field : {"\"stats\":", "\"queries\":[", "\"worker\":",
                            "\"queue_millis\":", "\"exec_millis\":",
                            "\"report\":", "\"truncated\":"}) {
    EXPECT_NE(batch_json.find(field), std::string::npos) << field;
  }
  // The per-report JSON path carries the new latency/truncation fields too.
  ASSERT_TRUE(batch.results[0].status.ok());
  const std::string report_json = DebugReportToJson(batch.results[0].report);
  EXPECT_NE(report_json.find("\"debug_millis\":"), std::string::npos);
  EXPECT_NE(report_json.find("\"truncated\":"), std::string::npos);
}

TEST(DebugServiceTest, ConcurrentRunBatchIsRejectedTyped) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  // Race many RunBatch calls: exactly the overlapping ones must come back
  // kInvalidArgument with every per-query slot failed; the rest succeed.
  // (Previously two in-flight batches silently corrupted each other's
  // result vectors.)
  constexpr int kCallers = 4;
  std::atomic<int> ok_batches{0};
  std::atomic<int> rejected_batches{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      BatchResult batch = service.RunBatch(ToyQueries());
      if (batch.status.ok()) {
        ++ok_batches;
        for (const QueryResult& r : batch.results) {
          EXPECT_TRUE(r.status.ok()) << r.status.ToString();
        }
      } else {
        ++rejected_batches;
        EXPECT_EQ(batch.status.code(), StatusCode::kInvalidArgument);
        EXPECT_EQ(batch.stats.failed, batch.results.size());
        for (const QueryResult& r : batch.results) {
          EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_GE(ok_batches.load(), 1) << "at least the first batch must run";
  EXPECT_EQ(ok_batches.load() + rejected_batches.load(), kCallers);

  // Sequential batches after the race still work (the in-flight flag was
  // released properly).
  BatchResult after = service.RunBatch(ToyQueries());
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.stats.failed, 0u);
}

TEST(DebugServiceTest, AdmissionControlShedsBeyondQueueDepth) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  // 6 queries against a queue bounded at 2: at least 6 - 2 - (ones a worker
  // dequeued while we were still enqueueing) are shed. Enqueueing happens
  // under one lock, so at least queries.size() - max_queue_depth - 1 shed.
  std::vector<std::string> queries;
  for (int i = 0; i < 6; ++i) {
    auto toy = ToyQueries();
    queries.push_back(toy[static_cast<size_t>(i) % toy.size()]);
  }
  BatchResult batch = service.RunBatch(queries);
  ASSERT_TRUE(batch.status.ok());
  EXPECT_GE(batch.stats.shed, queries.size() - options.max_queue_depth - 1);
  EXPECT_EQ(batch.stats.failed, batch.stats.shed)
      << "shed queries are the only failures";
  size_t shed_seen = 0;
  for (const QueryResult& r : batch.results) {
    if (!r.shed) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      continue;
    }
    ++shed_seen;
    EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(r.status.IsRetryable())
        << "shed load must be retryable by the caller: "
        << r.status.ToString();
    EXPECT_NE(r.status.message().find("admission control"), std::string::npos);
  }
  EXPECT_EQ(shed_seen, batch.stats.shed);

  // Unbounded (default) never sheds.
  ServiceOptions unbounded;
  unbounded.num_workers = 1;
  DebugService service2(fx.db.get(), fx.lattice.get(), fx.index.get(),
                        unbounded);
  BatchResult all = service2.RunBatch(queries);
  EXPECT_EQ(all.stats.shed, 0u);
  EXPECT_EQ(all.stats.failed, 0u);
}

TEST(DebugServiceTest, JsonCarriesResilienceFields) {
  testutil::ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 1;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch({"saffron candle"});
  const std::string stats_json = ServiceStatsToJson(batch.stats);
  for (const char* field :
       {"\"retries\":", "\"shed\":", "\"index_fallbacks\":",
        "\"semijoin_fallbacks\":"}) {
    EXPECT_NE(stats_json.find(field), std::string::npos) << field;
  }
  const std::string batch_json =
      BatchResultToJson(batch, /*include_reports=*/false);
  for (const char* field : {"\"ok\":true", "\"retries\":", "\"shed\":"}) {
    EXPECT_NE(batch_json.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace kwsdbg
