// The shared verdict tier must never serve a stale verdict across a
// database mutation: verdicts are keyed by Database::epoch(), the epoch is
// captured *before* evaluation (see QueryEvaluator::IsAlive), and a
// mutation + BumpEpoch() between batches invalidates every cached verdict
// for the old contents. This test races concurrent readers against a
// writer that toggles a cell and bumps the epoch: every reader must see
// the verdict matching the epoch it read under — ground truth, never a
// cached leftover from the other parity. Run it under TSAN (see
// tests/run_sanitizers.sh) to also prove the locking discipline.
//
// Synchronization model (mirrors the DebugService contract): readers hold
// a shared lock while evaluating, the writer mutates + bumps under the
// exclusive lock — data and epoch always change atomically together.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "lattice/canonical_label.h"
#include "sql/executor.h"
#include "test_util.h"
#include "traversal/evaluator.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {
namespace {

/// The Color row-0 synonyms cell with/without the marker keyword. The
/// marker occurs nowhere else in the toy database, so the aliveness of the
/// Color^marker node tracks the toggle exactly.
constexpr char kMarker[] = "zanzibar";
constexpr char kBaseSynonyms[] = "crimson, orange";

/// Finds the level-1 retained node for Color copy 1 (the node whose verdict
/// the toggle flips).
NodeId FindColorNode(const testutil::ToyFixture& fx, const PrunedLattice& pl) {
  for (NodeId n : pl.retained()) {
    const LatticeNode& node = fx.lattice->node(n);
    if (node.level != 1) continue;
    const RelationCopy v = node.tree.vertex(0);
    if (v.relation == fx.color && v.copy == 1) return n;
  }
  ADD_FAILURE() << "no retained Color^1 node";
  return kInvalidNode;
}

TEST(SharedCacheEpochTest, ConcurrentReadersNeverSeeStaleVerdicts) {
  testutil::ToyFixture fx;
  Table* color_table = fx.db->FindTable("Color");
  ASSERT_NE(color_table, nullptr);
  auto syn_col = color_table->schema().ColumnIndex("synonyms");
  ASSERT_TRUE(syn_col.ok());

  KeywordBinding binding({{kMarker, {fx.color, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
  const NodeId node = FindColorNode(fx, pl);
  ASSERT_NE(node, kInvalidNode);

  VerdictCache shared_cache;
  std::shared_mutex db_mu;
  // Writer-priority gate: glibc's rwlock prefers readers, and four readers
  // re-acquiring in a tight loop can starve the writer forever. Readers
  // back off while a toggle is pending.
  std::atomic<bool> writer_waiting{false};
  std::atomic<bool> stop{false};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> reads{0};
  // The fixture's builder has already bumped the epoch; parity is relative.
  const uint64_t initial_epoch = fx.db->epoch();

  // Invariant maintained by the writer: marker present iff an odd number of
  // toggles has been applied.
  const size_t kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // Per-reader SQL session (LIKE-scan path reads the live table); the
      // verdict tier is the shared one.
      Executor executor(fx.db.get());
      EvalOptions eval;
      eval.base_nodes_via_index = false;  // Force SQL, not the static index.
      QueryEvaluator evaluator(fx.db.get(), &executor, &pl, fx.index.get(),
                               eval, &shared_cache);
      while (!stop.load(std::memory_order_acquire)) {
        if (writer_waiting.load(std::memory_order_acquire)) {
          std::this_thread::yield();
          continue;
        }
        std::shared_lock<std::shared_mutex> lock(db_mu);
        const uint64_t epoch = fx.db->epoch();
        const bool expected = ((epoch - initial_epoch) % 2 == 1);
        auto alive = evaluator.IsAlive(node);
        if (!alive.ok() || *alive != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: toggle the marker in and out, bumping the epoch each time.
  // Between toggles, wait (bounded) for the readers to make progress so the
  // epochs actually interleave with evaluations instead of racing past
  // them before the reader threads are scheduled.
  const size_t kToggles = 100;
  for (size_t t = 0; t < kToggles; ++t) {
    // Let the readers observe the current epoch before flipping again.
    const size_t reads_before = reads.load(std::memory_order_relaxed);
    for (int spin = 0; spin < 20000; ++spin) {
      if (reads.load(std::memory_order_relaxed) > reads_before) break;
      std::this_thread::yield();
    }
    writer_waiting.store(true, std::memory_order_release);
    {
      std::unique_lock<std::shared_mutex> lock(db_mu);
      const bool inserting = (fx.db->epoch() - initial_epoch) % 2 == 0;
      const std::string next =
          inserting ? std::string(kBaseSynonyms) + ", " + kMarker
                    : std::string(kBaseSynonyms);
      ASSERT_TRUE(color_table->SetValue(0, *syn_col, Value(next)).ok());
      fx.db->BumpEpoch();
    }
    writer_waiting.store(false, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "a reader observed a verdict inconsistent with its epoch";
  EXPECT_GT(reads.load(), 0u);
  // The cache was actually exercised across epochs, not bypassed.
  const VerdictCacheStats stats = shared_cache.stats();
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(SharedCacheEpochTest, BumpEpochInvalidatesWithoutClear) {
  testutil::ToyFixture fx;
  Table* color_table = fx.db->FindTable("Color");
  ASSERT_NE(color_table, nullptr);
  auto syn_col = color_table->schema().ColumnIndex("synonyms");
  ASSERT_TRUE(syn_col.ok());

  KeywordBinding binding({{kMarker, {fx.color, 1}}});
  PrunedLattice pl = PrunedLattice::Build(*fx.lattice, binding);
  const NodeId node = FindColorNode(fx, pl);

  VerdictCache shared_cache;
  Executor executor(fx.db.get());
  EvalOptions eval;
  eval.base_nodes_via_index = false;
  QueryEvaluator evaluator(fx.db.get(), &executor, &pl, fx.index.get(), eval,
                           &shared_cache);

  // Pre-mutation epoch: marker absent -> dead, verdict cached.
  const uint64_t initial_epoch = fx.db->epoch();
  auto before = evaluator.IsAlive(node);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(*before);

  // Mutate + bump. No Clear(): the key's epoch component is the invalidation.
  ASSERT_TRUE(color_table
                  ->SetValue(0, *syn_col,
                             Value(std::string(kBaseSynonyms) + ", " + kMarker))
                  .ok());
  fx.db->BumpEpoch();

  auto after = evaluator.IsAlive(node);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(*after) << "stale pre-mutation verdict served after BumpEpoch";

  // The old-epoch verdict is still present (LRU-bounded, no Clear() ran —
  // both verdicts are resident, nothing was evicted), just unreachable from
  // the new epoch. The entry is keyed by the evaluator's relation-set
  // fingerprint as well, so it cannot be addressed from here with a bare
  // (canonical, sig, epoch) probe; residency is asserted via the counters.
  const VerdictCacheStats stats = shared_cache.stats();
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

}  // namespace
}  // namespace kwsdbg
