// Service-level live writes: relation-scoped verdict eviction across shard
// partitions, warm-cache survival of writes to disjoint relations, the
// const-service write rejection, write counters through stats/JSON, and a
// write-while-querying interleaving (the TSAN target — everything here uses
// a resident catalog; the buffer pool is single-session by design).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "debugger/non_answer_debugger.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

// Handpicked toy-vocabulary queries covering all four relations.
std::vector<std::string> ToyQueries() {
  return {"saffron candle", "incense", "golden", "floral", "vanilla"};
}

/// Classification signatures from a fresh serial debugger whose index is
/// rebuilt from the database's CURRENT contents — the ground truth any
/// post-write service run must match (a stale verdict breaks this).
std::vector<std::string> FreshReference(const ToyFixture& fx,
                                        const std::vector<std::string>& qs) {
  const InvertedIndex fresh = InvertedIndex::Build(*fx.db);
  NonAnswerDebugger serial(fx.db.get(), fx.lattice.get(), &fresh);
  std::vector<std::string> sigs;
  for (const std::string& q : qs) {
    auto report = serial.Debug(q);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    sigs.push_back(report->ClassificationSignature());
  }
  return sigs;
}

TEST(LiveMutationTest, ConstServiceRejectsWrites) {
  ToyFixture fx;
  const Database* db = fx.db.get();
  const InvertedIndex* index = fx.index.get();
  DebugService service(db, fx.lattice.get(), index);

  EXPECT_EQ(service.mutator(), nullptr);
  Status s = service.ApplyMutation(
      Mutation::Delete("Color", 0));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  // And the stats stay all-zero on the write counters.
  BatchResult batch = service.RunBatch({"incense"});
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.stats.mutations_applied, 0u);
  EXPECT_EQ(batch.stats.partial_evictions, 0u);
}

TEST(LiveMutationTest, WriteEvictsOnlyBoundRelationsAcrossShards) {
  ToyFixture fx;
  ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  ASSERT_NE(service.mutator(), nullptr);

  // Seed every shard partition with three verdicts: one binding Color, one
  // binding only Attribute, one with an unknown (0) relation mask.
  const uint64_t color_bit =
      RelationFences::BitFor(fx.db->FindTable("Color")->catalog_index());
  const uint64_t attr_bit =
      RelationFences::BitFor(fx.db->FindTable("Attribute")->catalog_index());
  const uint64_t epoch = fx.db->epoch();
  for (size_t s = 0; s < service.num_shards(); ++s) {
    VerdictCache* cache = service.shard_cache(s);
    cache->Insert("n_color", "sig", epoch, /*relset=*/7, true, color_bit);
    cache->Insert("n_attr", "sig", epoch, /*relset=*/7, true, attr_bit);
    cache->Insert("n_unknown", "sig", epoch, /*relset=*/7, true, 0);
  }

  // A write to Color (existing vocabulary, so the dictionary is stable).
  ASSERT_TRUE(service
                  .ApplyMutation(Mutation::Insert(
                      "Color", {Value(int64_t{9}), Value("red"),
                                Value("crimson")}))
                  .ok());

  for (size_t s = 0; s < service.num_shards(); ++s) {
    VerdictCache* cache = service.shard_cache(s);
    // Color-bound and unknown-mask verdicts die on every shard...
    EXPECT_FALSE(cache->Lookup("n_color", "sig", epoch, 7).has_value())
        << "shard " << s;
    EXPECT_FALSE(cache->Lookup("n_unknown", "sig", epoch, 7).has_value())
        << "shard " << s;
    // ...while the Attribute-only verdict survives untouched.
    EXPECT_TRUE(cache->Lookup("n_attr", "sig", epoch, 7).has_value())
        << "shard " << s;
  }
  EXPECT_EQ(service.mutator()->stats().partial_evictions.load(),
            2u * service.num_shards());
}

TEST(LiveMutationTest, WarmCacheSurvivesWriteToDisjointRelation) {
  ToyFixture fx;
  const std::vector<std::string> queries = ToyQueries();
  ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);

  BatchResult cold = service.RunBatch(queries);
  ASSERT_TRUE(cold.status.ok());
  BatchResult warm = service.RunBatch(queries);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_GT(warm.stats.cache_hits, 0u);

  // One write to Attribute. Verdicts over networks that do not bind
  // Attribute must keep answering from the shard partitions.
  ASSERT_TRUE(service
                  .ApplyMutation(Mutation::Update(
                      "Attribute", 2, 2, Value(std::string("striped"))))
                  .ok());

  BatchResult after = service.RunBatch(queries);
  ASSERT_TRUE(after.status.ok());
  EXPECT_GT(after.stats.cache_hits, 0u)
      << "a single-table write must not cold-start the verdict tier";
  EXPECT_EQ(after.stats.mutations_applied, 1u);
  EXPECT_GT(after.stats.partial_evictions + after.stats.index_patches, 0u);

  // Zero stale verdicts: every classification equals a fresh debugger over
  // the mutated database ("floral" changed truth — it is now absent).
  const std::vector<std::string> want = FreshReference(fx, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(after.results[i].status.ok());
    EXPECT_EQ(after.results[i].report.ClassificationSignature(), want[i])
        << queries[i];
  }

  // The write counters surface in the human and JSON renderings.
  EXPECT_NE(after.stats.ToString().find("writes:"), std::string::npos);
  const std::string json = ServiceStatsToJson(after.stats);
  EXPECT_NE(json.find("\"mutations_applied\":1"), std::string::npos);
  EXPECT_NE(json.find("\"partial_evictions\":"), std::string::npos);
  EXPECT_NE(json.find("\"index_patches\":"), std::string::npos);
}

TEST(LiveMutationTest, WriteToOneTableKeepsOtherTablesVerdictsAcrossShards) {
  // End-to-end version of the partial-invalidation contract: warm both
  // shards, write to ProductType, and require surviving hits on the rerun
  // of queries that never bind it — visible in the per-shard counters.
  // The queries must span tables (Color + Attribute) so the traversal
  // evaluates join networks: single-relation nodes answer from the
  // level-1 index shortcut and never touch the verdict tier at all.
  ToyFixture fx;
  const std::vector<std::string> queries = {"golden floral",
                                            "saffron vanilla"};
  ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);

  (void)service.RunBatch(queries);
  BatchResult warm = service.RunBatch(queries);
  ASSERT_TRUE(warm.status.ok());
  size_t warm_shard_hits = 0;
  for (const ShardStats& shard : warm.stats.shards) {
    warm_shard_hits += shard.local_cache_hits + shard.remote_cache_hits;
  }
  ASSERT_GT(warm_shard_hits, 0u)
      << "warm rerun must answer join-network verdicts from the partitions";

  ASSERT_TRUE(service
                  .ApplyMutation(Mutation::Insert(
                      "ProductType", {Value(int64_t{4}), Value("oil")}))
                  .ok());

  BatchResult after = service.RunBatch(queries);
  ASSERT_TRUE(after.status.ok());
  size_t shard_hits = 0;
  for (const ShardStats& shard : after.stats.shards) {
    shard_hits += shard.local_cache_hits + shard.remote_cache_hits;
  }
  EXPECT_GT(shard_hits, 0u)
      << "verdicts binding only Color/Attribute/Item networks free of "
         "ProductType must survive a ProductType write";
}

TEST(LiveMutationTest, ConcurrentWritesWhileQuerying) {
  // The TSAN interleaving: one writer thread mutates Color while the main
  // thread runs batches. Resident catalog only (spilled tiers are
  // single-session). Correctness bar: every query OK on every pass, and the
  // final pass matches a fresh rebuild of the world.
  ToyFixture fx;
  const std::vector<std::string> queries = ToyQueries();
  ServiceOptions options;
  options.num_workers = 3;
  options.num_shards = 3;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);

  std::atomic<bool> stop{false};
  std::atomic<size_t> writes_ok{0};
  std::thread writer([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Rotate insert / update / delete, always with existing vocabulary.
      Status s;
      if (i % 3 == 0) {
        s = service.ApplyMutation(Mutation::Insert(
            "Color", {Value(static_cast<int64_t>(100 + i)), Value("golden"),
                      Value("yellow")}));
      } else if (i % 3 == 1) {
        s = service.ApplyMutation(Mutation::Update(
            "Color", 1, 2, Value(std::string("lemon"))));
      } else {
        const size_t last = fx.db->FindTable("Color")->num_rows() - 1;
        s = service.ApplyMutation(Mutation::Delete("Color", last));
      }
      if (s.ok()) writes_ok.fetch_add(1, std::memory_order_relaxed);
      ++i;
    }
  });

  for (int pass = 0; pass < 6; ++pass) {
    BatchResult batch = service.RunBatch(queries);
    ASSERT_TRUE(batch.status.ok());
    for (const QueryResult& r : batch.results) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(writes_ok.load(), 0u);

  // Quiesced now: the final batch must agree with a fresh debugger over the
  // mutated database (catches any stale verdict or unpatched index state).
  const std::vector<std::string> want = FreshReference(fx, queries);
  BatchResult final_batch = service.RunBatch(queries);
  ASSERT_TRUE(final_batch.status.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(final_batch.results[i].status.ok());
    EXPECT_EQ(final_batch.results[i].report.ClassificationSignature(),
              want[i])
        << queries[i];
  }
}

}  // namespace
}  // namespace kwsdbg
