// Chaos suite: the debugging pipeline under injected faults. The invariant
// being defended is the paper's ground-truth guarantee carried into a faulty
// world — a query either returns the *exact* fault-free classification
// (after retries or a degraded-mode fallback) or fails with a typed
// retryable status naming the faulted layer. No wrong verdict, ever.
//
// Determinism: every schedule here uses counted (`times=`) or always-on
// triggers, so runs replay bit-identically; probabilistic schedules belong
// to bench/resilience_workload where a fixed seed is printed.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "datasets/ecommerce.h"
#include "datasets/query_generator.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "storage/csv.h"
#include "test_util.h"

namespace kwsdbg {
namespace {

std::vector<std::string> ToyQueries() {
  return {"saffron candle", "red candle", "vanilla oil", "scented candle"};
}

/// Fault-free classification signatures, computed serially — the ground
/// truth every faulted run is compared against.
std::vector<std::string> BaselineSignatures(const testutil::ToyFixture& fx) {
  NonAnswerDebugger serial(fx.db.get(), fx.lattice.get(), fx.index.get());
  std::vector<std::string> sigs;
  for (const std::string& q : ToyQueries()) {
    auto report = serial.Debug(q);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    sigs.push_back(report->ClassificationSignature());
  }
  return sigs;
}

// --- Parity gates ---------------------------------------------------------

TEST(ChaosTest, RetryableFaultsWithBudgetAreInvisible) {
  testutil::ToyFixture fx;
  const std::vector<std::string> baseline = BaselineSignatures(fx);

  // A bounded burst of transient failures across three layers. The retry
  // budget (attempts per query) exceeds the total scheduled fires, so every
  // query must come back bit-identical to the fault-free run.
  ScopedFaultInjection faults(
      "cache.verdict.lookup=unavailable,times=2;"
      "storage.table.read=unavailable,times=2;"
      "executor.join.probe=resource-exhausted,times=2");
  ServiceOptions options;
  options.num_workers = 2;
  options.max_retries = 8;
  options.retry_backoff_base_millis = 0.1;  // Keep the test fast.
  options.retry_backoff_max_millis = 1.0;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch(ToyQueries());
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.stats.failed, 0u)
      << "every transient failure must be absorbed by retries";
  EXPECT_GT(batch.stats.retries, 0u)
      << "the schedule fired (" << FaultInjector::Global().Summary()
      << ") so some attempt must have been retried";
  for (size_t i = 0; i < batch.results.size(); ++i) {
    ASSERT_TRUE(batch.results[i].status.ok())
        << batch.results[i].status.ToString();
    EXPECT_EQ(batch.results[i].report.ClassificationSignature(), baseline[i])
        << "query \"" << ToyQueries()[i] << "\" diverged under faults";
  }
  EXPECT_GT(FaultInjector::Global().TotalFires(), 0u)
      << "schedule never fired — the test asserted nothing";
}

TEST(ChaosTest, RetriesDisabledSurfaceTypedErrorsAndNoWrongVerdicts) {
  testutil::ToyFixture fx;
  const std::vector<std::string> baseline = BaselineSignatures(fx);

  ScopedFaultInjection faults("cache.verdict.lookup=unavailable,times=3");
  ServiceOptions options;
  options.num_workers = 2;
  options.max_retries = 0;  // First transient failure is final.
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch(ToyQueries());
  ASSERT_TRUE(batch.status.ok());
  EXPECT_GT(batch.stats.failed, 0u) << "the schedule must hurt someone";
  EXPECT_EQ(batch.stats.retries, 0u);
  for (size_t i = 0; i < batch.results.size(); ++i) {
    const QueryResult& r = batch.results[i];
    if (!r.status.ok()) {
      // Failed queries carry the typed retryable status, naming the layer.
      EXPECT_EQ(r.status.code(), StatusCode::kUnavailable)
          << r.status.ToString();
      EXPECT_TRUE(r.status.IsRetryable());
      EXPECT_NE(r.status.message().find("cache.verdict.lookup"),
                std::string::npos)
          << "error must name the fault point: " << r.status.ToString();
      // And no verdicts were fabricated for them.
      EXPECT_EQ(r.report.TotalAnswers(), 0u);
      EXPECT_EQ(r.report.TotalNonAnswers(), 0u);
    } else {
      // Untouched queries are bit-identical to the fault-free run.
      EXPECT_EQ(r.report.ClassificationSignature(), baseline[i]);
    }
  }
}

TEST(ChaosTest, DegradedModeFallbacksPreserveParity) {
  testutil::ToyFixture fx;
  const std::vector<std::string> baseline = BaselineSignatures(fx);

  // Always-on faults on the two degrade-don't-fail paths: posting lists and
  // the semijoin pass. Queries must not fail OR retry — the executor falls
  // back to the LIKE-scan / plain-join paths and the classification stays
  // bit-identical.
  ScopedFaultInjection faults(
      "executor.text_index=unavailable;executor.semijoin=unavailable");
  ServiceOptions options;
  options.num_workers = 2;
  DebugService service(fx.db.get(), fx.lattice.get(), fx.index.get(),
                       options);
  BatchResult batch = service.RunBatch(ToyQueries());
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.stats.failed, 0u);
  EXPECT_EQ(batch.stats.retries, 0u)
      << "degradation must be invisible to the retry layer";
  for (size_t i = 0; i < batch.results.size(); ++i) {
    ASSERT_TRUE(batch.results[i].status.ok());
    EXPECT_EQ(batch.results[i].report.ClassificationSignature(), baseline[i])
        << "degraded run diverged on \"" << ToyQueries()[i] << "\"";
  }
  // The slow paths were actually taken, and the counters say so all the way
  // up the stack: ServiceStats and its JSON export.
  EXPECT_GT(batch.stats.index_fallbacks + batch.stats.semijoin_fallbacks, 0u)
      << FaultInjector::Global().Summary();
  const std::string json = ServiceStatsToJson(batch.stats);
  EXPECT_NE(json.find("\"index_fallbacks\":"), std::string::npos);
  EXPECT_NE(json.find("\"semijoin_fallbacks\":"), std::string::npos);
  EXPECT_EQ(json.find("\"index_fallbacks\":0,\"semijoin_fallbacks\":0"),
            std::string::npos)
      << "at least one fallback counter must be nonzero in: " << json;
}

// --- Per-fault-point propagation ------------------------------------------
// Each error-typed fault point must surface through QueryEvaluator ->
// NonAnswerDebugger -> QueryResult.status as the injected code, with the
// fault-point name preserved in the message.

class ChaosPropagationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosPropagationTest, InjectedStatusSurfacesThroughPipeline) {
  const std::string point = GetParam();
  testutil::ToyFixture fx;
  ScopedFaultInjection faults(point + "=unavailable");
  NonAnswerDebugger debugger(fx.db.get(), fx.lattice.get(), fx.index.get());
  bool fired = false;
  for (const std::string& q : ToyQueries()) {
    auto report = debugger.Debug(q);
    if (report.ok()) continue;  // This query never reached the point.
    fired = true;
    EXPECT_EQ(report.status().code(), StatusCode::kUnavailable)
        << report.status().ToString();
    EXPECT_TRUE(report.status().IsRetryable());
    EXPECT_NE(report.status().message().find(point), std::string::npos)
        << "status must name the fault point: " << report.status().ToString();
  }
  EXPECT_TRUE(fired) << "no toy query ever reached fault point " << point
                     << " — the point is dead or mis-threaded ("
                     << FaultInjector::Global().Summary() << ")";
}

INSTANTIATE_TEST_SUITE_P(AllErrorPoints, ChaosPropagationTest,
                         ::testing::Values("storage.table.read",
                                           "executor.index.build",
                                           "executor.join.probe",
                                           "cache.verdict.lookup"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(ChaosTest, CsvLoadFaultAbortsTyped) {
  ScopedFaultInjection faults("storage.csv.load=unavailable,after=1,times=1");
  std::istringstream in("a:INT\n1\n2\n3\n");
  auto table = ReadTableCsv("t", &in);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(table.status().IsRetryable());
  EXPECT_NE(table.status().message().find("storage.csv.load"),
            std::string::npos)
      << table.status().ToString();
  // Clean retry after the outage: the load succeeds in full.
  std::istringstream retry("a:INT\n1\n2\n3\n");
  auto loaded = ReadTableCsv("t", &retry);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), 3u);
}

// --- Differential fuzz under faults ---------------------------------------
// The differential fuzzer's case generator (seeded random e-commerce
// catalogs + random queries), replayed through the service under fault
// schedules. For every generated query: the faulted run must be
// bit-identical to the fault-free serial run — the chaos analogue of
// DifferentialFuzzTest's runner-parity invariant.

TEST(ChaosFuzzTest, RandomInstancesStayBitIdenticalUnderFaults) {
  const char* iters_env = std::getenv("KWSDBG_CHAOS_FUZZ_ITERS");
  const char* seed_env = std::getenv("KWSDBG_FUZZ_SEED");
  const size_t iters =
      iters_env == nullptr ? 4 : static_cast<size_t>(std::atoll(iters_env));
  const uint64_t base_seed =
      seed_env == nullptr ? 1234 : static_cast<uint64_t>(std::atoll(seed_env));
  std::printf("chaos fuzz: %zu iteration(s), base seed %llu "
              "(KWSDBG_CHAOS_FUZZ_ITERS / KWSDBG_FUZZ_SEED to override)\n",
              iters, static_cast<unsigned long long>(base_seed));

  for (size_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    // Same instance shape as DifferentialFuzzTest::BuildCase.
    Rng rng(seed);
    EcommerceConfig config;
    config.seed = seed;
    config.num_items = static_cast<size_t>(rng.UniformRange(20, 80));
    const double null_rates[] = {0.0, 0.1, 0.3};
    config.null_color_rate = null_rates[rng.Uniform(3)];
    auto dataset = GenerateEcommerce(config);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    LatticeConfig lconfig;
    lconfig.max_joins = 2;
    lconfig.num_keyword_copies = 2;
    auto lattice = LatticeGenerator::Generate(dataset->schema, lconfig);
    ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();
    InvertedIndex index = InvertedIndex::Build(*dataset->db);

    QueryGeneratorConfig gconfig;
    gconfig.seed = seed;
    gconfig.min_keywords = 1;
    gconfig.max_keywords = 3;
    RandomQueryGenerator generator(&index, gconfig);
    std::vector<std::string> queries;
    for (size_t q = 0; q < 3; ++q) queries.push_back(generator.Next());
    queries.push_back("saffron candle");  // The paper's dead-MTN frontier.

    // Fault-free serial ground truth.
    std::vector<std::string> baseline;
    {
      NonAnswerDebugger serial(dataset->db.get(), lattice->get(), &index);
      for (const std::string& q : queries) {
        auto report = serial.Debug(q);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        baseline.push_back(report->ClassificationSignature());
      }
    }

    const auto check = [&](const char* schedule, size_t max_retries) {
      ScopedFaultInjection faults(schedule);
      ServiceOptions options;
      options.num_workers = 4;
      options.max_retries = max_retries;
      options.retry_backoff_base_millis = 0.1;
      options.retry_backoff_max_millis = 1.0;
      DebugService service(dataset->db.get(), lattice->get(), &index,
                           options);
      BatchResult batch = service.RunBatch(queries);
      ASSERT_TRUE(batch.status.ok());
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_TRUE(batch.results[i].status.ok())
            << "seed " << seed << " schedule \"" << schedule << "\" query \""
            << queries[i]
            << "\": " << batch.results[i].status.ToString();
        EXPECT_EQ(batch.results[i].report.ClassificationSignature(),
                  baseline[i])
            << "seed " << seed << " schedule \"" << schedule
            << "\" diverged on \"" << queries[i]
            << "\" (repro: KWSDBG_FUZZ_SEED=" << seed
            << " KWSDBG_CHAOS_FUZZ_ITERS=1)";
      }
    };
    // Counted transient outages, budget provably unexhaustible.
    check(
        "cache.verdict.lookup=unavailable,times=2;"
        "storage.table.read=unavailable,times=2;"
        "executor.join.probe=resource-exhausted,times=2",
        /*max_retries=*/8);
    // Always-on degraded mode.
    check("executor.text_index=unavailable;executor.semijoin=unavailable",
          /*max_retries=*/0);
  }
}

TEST(ChaosTest, LatencyFaultsDelayButNeverChangeVerdicts) {
  testutil::ToyFixture fx;
  const std::vector<std::string> baseline = BaselineSignatures(fx);
  ScopedFaultInjection faults("cache.verdict.lookup=latency,latency=1");
  NonAnswerDebugger debugger(fx.db.get(), fx.lattice.get(), fx.index.get());
  const std::vector<std::string> queries = ToyQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto report = debugger.Debug(queries[i]);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->ClassificationSignature(), baseline[i]);
  }
  EXPECT_GT(FaultInjector::Global().TotalFires(), 0u);
}

}  // namespace
}  // namespace kwsdbg
