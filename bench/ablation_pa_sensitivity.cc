// Ablation (DESIGN.md §5): sensitivity of SBH to the alive-probability
// parameter p_a. The paper fixes p_a = 0.5 and reports that it "works
// surprisingly well"; this sweep quantifies how much the choice matters.
//
// Columns: fixed p_a in {0.1..0.9}, the legacy sampling estimator (which
// spends its own SQL probes, reported separately), and the online-learned
// PaModel (traversal/pa_model.h) warmed on one observation pass over the
// same workload — the adaptive tier's replacement for sampling.
//
//   ./ablation_pa_sensitivity [--out=BENCH_pa_sensitivity.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "traversal/pa_model.h"
#include "traversal/strategies.h"
#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

/// RunStrategyOnQuery with the evaluator's p_a observation hook attached,
/// so verdicts feed (and SBH reads) the shared model.
StrategyRun RunWithModel(const BenchEnv& env, size_t level,
                         const std::string& query,
                         TraversalStrategy* strategy, PaModel* model) {
  StrategyRun out;
  const Lattice& lattice = env.lattice(level);
  KeywordBinder binder(&env.schema(), &env.index(),
                       lattice.config().EffectiveKeywordCopies());
  BindingResult binding_result = binder.Bind(query);
  Executor executor(&env.db());
  executor.RegisterTextIndex(&env.index());
  EvalOptions eval;
  eval.pa_model = model;
  for (const KeywordBinding& binding : binding_result.interpretations) {
    PrunedLattice pl = PrunedLattice::Build(lattice, binding);
    if (pl.mtns().empty()) continue;
    QueryEvaluator evaluator(&env.db(), &executor, &pl, &env.index(), eval);
    auto result = strategy->Run(pl, &evaluator);
    KWSDBG_CHECK(result.ok()) << result.status().ToString();
    out.sql_queries += result->stats.sql_queries;
    out.total_millis += result->stats.total_millis;
  }
  return out;
}

int Run(const std::string& out_path) {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  const double pas[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::printf(
      "Ablation (level %zu): SBH SQL query counts as p_a varies\n", level);

  // Warm the online model with one observation pass (SBH @ 0.5): its SQL is
  // the one-time training cost, amortized across every later query.
  PaModel model;
  size_t warm_sql = 0;
  {
    SbhOptions options;
    auto sbh = MakeScoreBased(options);
    for (const WorkloadQuery& q : PaperWorkload()) {
      warm_sql +=
          RunWithModel(env, level, q.text, sbh.get(), &model).sql_queries;
    }
  }
  model.Freeze();

  std::vector<std::string> headers = {"query"};
  for (double pa : pas) headers.push_back("pa=" + Fmt(pa));
  headers.push_back("sampled");
  headers.push_back("+probes");
  headers.push_back("model");
  TablePrinter table(headers);
  std::ostringstream rows_json;
  std::vector<size_t> totals(std::size(pas) + 3, 0);
  bool first_row = true;
  for (const WorkloadQuery& q : PaperWorkload()) {
    std::vector<std::string> row = {q.id};
    if (!first_row) rows_json << ',';
    first_row = false;
    rows_json << "{\"query\":\"" << q.id << "\"";
    for (size_t i = 0; i < std::size(pas); ++i) {
      SbhOptions options;
      options.alive_probability = pas[i];
      auto sbh = MakeScoreBased(options);
      StrategyRun run = RunStrategyOnQuery(env, level, q.text, sbh.get());
      row.push_back(std::to_string(run.sql_queries));
      totals[i] += run.sql_queries;
      rows_json << ",\"pa_" << Fmt(pas[i]) << "\":" << run.sql_queries;
    }
    // The paper's future-work variant: sample-estimate p_a per run. Its
    // probe SQL lands in sql_queries too; pa_sample_sql breaks it out.
    SbhOptions est;
    est.estimate_pa = true;
    auto sbh = MakeScoreBased(est);
    StrategyRun run = RunStrategyOnQuery(env, level, q.text, sbh.get());
    row.push_back(std::to_string(run.sql_queries));
    row.push_back(std::to_string(run.pa_sample_sql));
    totals[std::size(pas)] += run.sql_queries;
    totals[std::size(pas) + 1] += run.pa_sample_sql;
    rows_json << ",\"sampled\":" << run.sql_queries
              << ",\"sample_probes\":" << run.pa_sample_sql;
    // The observation-fed model: no per-run probes at all.
    SbhOptions adaptive;
    adaptive.pa_model = &model;
    auto sbh_model = MakeScoreBased(adaptive);
    StrategyRun model_run =
        RunWithModel(env, level, q.text, sbh_model.get(), &model);
    row.push_back(std::to_string(model_run.sql_queries));
    totals[std::size(pas) + 2] += model_run.sql_queries;
    rows_json << ",\"model\":" << model_run.sql_queries << '}';
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\ntotals:");
  for (size_t i = 0; i < std::size(pas); ++i) {
    std::printf(" pa=%.1f:%zu", pas[i], totals[i]);
  }
  std::printf(" sampled:%zu (probes %zu) model:%zu (one-time warm %zu)",
              totals[std::size(pas)], totals[std::size(pas) + 1],
              totals[std::size(pas) + 2], warm_sql);
  std::printf(
      "\nexpected shape (paper Sec. 2.5.3): p_a affects performance, not "
      "correctness; 0.5 is competitive, and the learned model matches or "
      "beats it without per-run probe SQL.\n");

  std::ostringstream json;
  json << "{\"bench\":\"ablation_pa_sensitivity\",\"level\":" << level
       << ",\"rows\":[" << rows_json.str() << "],\"totals\":{";
  for (size_t i = 0; i < std::size(pas); ++i) {
    if (i > 0) json << ',';
    json << "\"pa_" << Fmt(pas[i]) << "\":" << totals[i];
  }
  json << ",\"sampled\":" << totals[std::size(pas)]
       << ",\"sample_probes\":" << totals[std::size(pas) + 1]
       << ",\"model\":" << totals[std::size(pas) + 2]
       << ",\"model_warm_sql\":" << warm_sql
       << "},\"pa_observations\":" << model.observations() << '}';
  std::ofstream f(out_path);
  if (f) {
    f << json.str() << '\n';
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pa_sensitivity.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  return kwsdbg::bench::Run(out_path);
}
