// Ablation (DESIGN.md §5): sensitivity of SBH to the alive-probability
// parameter p_a. The paper fixes p_a = 0.5 and reports that it "works
// surprisingly well"; this sweep quantifies how much the choice matters.
#include <cstdio>

#include "traversal/strategies.h"
#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

void Run() {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  const double pas[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::printf(
      "Ablation (level %zu): SBH SQL query counts as p_a varies\n", level);
  std::vector<std::string> headers = {"query"};
  for (double pa : pas) headers.push_back("pa=" + Fmt(pa));
  headers.push_back("estimated");
  TablePrinter table(headers);
  std::vector<size_t> totals(std::size(pas) + 1, 0);
  for (const WorkloadQuery& q : PaperWorkload()) {
    std::vector<std::string> row = {q.id};
    for (size_t i = 0; i < std::size(pas); ++i) {
      SbhOptions options;
      options.alive_probability = pas[i];
      auto sbh = MakeScoreBased(options);
      StrategyRun run = RunStrategyOnQuery(env, level, q.text, sbh.get());
      row.push_back(std::to_string(run.sql_queries));
      totals[i] += run.sql_queries;
    }
    // The paper's future-work variant: sample-estimate p_a per run.
    SbhOptions est;
    est.estimate_pa = true;
    auto sbh = MakeScoreBased(est);
    StrategyRun run = RunStrategyOnQuery(env, level, q.text, sbh.get());
    row.push_back(std::to_string(run.sql_queries));
    totals[std::size(pas)] += run.sql_queries;
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\ntotals:");
  for (size_t i = 0; i < std::size(pas); ++i) {
    std::printf(" pa=%.1f:%zu", pas[i], totals[i]);
  }
  std::printf(" estimated:%zu", totals[std::size(pas)]);
  std::printf(
      "\nexpected shape (paper Sec. 2.5.3): p_a affects performance, not "
      "correctness, and 0.5 is competitive across the workload.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
