// Out-of-core storage gate: the buffer-pool + on-disk-posting tier vs. the
// fully resident engine — see storage/buffer_pool.h, storage/database.h
// (ApplyMemoryBudget), and text/posting_store.h.
//
// For each dataset (scaled DBLife + e-commerce) the debugger workload is
// replayed twice under every traversal strategy:
//
//   resident  — everything in RAM (the pre-tier engine; storage counters
//               must stay zero).
//   spilled   — the identical, regenerated dataset with every large table
//               pushed through the buffer pool under a memory budget
//               smaller than the dataset, and the posting lists on disk.
//
// Gates: classification signatures bit-identical per strategy, the spilled
// runs actually page (page_reads > 0 in the aggregated traversal stats),
// and the page counters are visible in both the report JSON and the
// DebugService stats JSON. Emits BENCH_storage.json.
//
//   ./storage_tier_workload [--smoke] [--out=BENCH_storage.json]
//
// Environment knobs: KWSDBG_SEED / KWSDBG_SCALE as in bench_util.h (full
// mode scales DBLife 10x toward the paper's 801k-tuple snapshot).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "datasets/dblife.h"
#include "datasets/ecommerce.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "debugger/report_json.h"
#include "lattice/lattice_generator.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace bench {
namespace {

/// One dataset instance (db + lattice + index) plus how to rebuild it —
/// the spilled half regenerates from scratch so both modes see identical,
/// independently owned data.
struct TierEnv {
  std::string name;
  std::unique_ptr<Database> db;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
  std::unique_ptr<InvertedIndex> index;
  std::vector<std::string> queries;
};

struct StrategyRun {
  std::string signature;
  TraversalStats stats;
  double millis = 0;
  std::string sample_report_json;  ///< First query's report (JSON).
};

StrategyRun RunStrategy(const TierEnv& env, TraversalKind kind) {
  DebuggerOptions options;
  options.strategy = kind;
  options.verdict_cache_capacity = 0;  // measure paging, not verdict reuse
  NonAnswerDebugger debugger(env.db.get(), env.lattice.get(),
                             env.index.get(), options);
  StrategyRun run;
  Timer timer;
  for (const std::string& query : env.queries) {
    auto report = debugger.Debug(query);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    run.signature += report->ClassificationSignature();
    run.signature += '\n';
    TraversalStats stats = report->AggregateTraversalStats();
    run.stats.sql_queries += stats.sql_queries;
    run.stats.rows_probed += stats.rows_probed;
    run.stats.page_hits += stats.page_hits;
    run.stats.page_reads += stats.page_reads;
    run.stats.page_evictions += stats.page_evictions;
    run.stats.posting_reads += stats.posting_reads;
    if (run.sample_report_json.empty()) {
      run.sample_report_json = DebugReportToJson(*report);
    }
  }
  run.millis = timer.ElapsedMillis();
  return run;
}

struct TierRow {
  std::string env;
  std::string strategy;
  std::string mode;  // "resident" | "spilled"
  TraversalStats stats;
  double millis = 0;
  bool signature_match = false;

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\"env\":\"" << env << "\",\"strategy\":\"" << strategy
        << "\",\"mode\":\"" << mode
        << "\",\"sql_queries\":" << stats.sql_queries
        << ",\"rows_probed\":" << stats.rows_probed
        << ",\"page_hits\":" << stats.page_hits
        << ",\"page_reads\":" << stats.page_reads
        << ",\"page_evictions\":" << stats.page_evictions
        << ",\"posting_reads\":" << stats.posting_reads
        << ",\"millis\":" << millis
        << ",\"signature_match\":" << (signature_match ? "true" : "false")
        << "}";
    return out.str();
  }
};

/// Spills `env` in place: posting lists to a PostingStore, tables through
/// the buffer pool under a budget of a quarter of the estimated footprint.
/// Returns the applied budget.
size_t SpillEnv(TierEnv* env) {
  const size_t total = env->db->EstimateBytes();
  const size_t budget = total / 4;
  KWSDBG_CHECK(budget > 0 && budget < total)
      << env->name << ": budget " << budget << " not below dataset " << total;
  Status st = env->index->SpillToDisk("", /*cache_lists=*/64);
  KWSDBG_CHECK(st.ok()) << st.ToString();
  st = env->db->ApplyMemoryBudget(budget);
  KWSDBG_CHECK(st.ok()) << st.ToString();
  KWSDBG_CHECK(env->db->AnySpilled()) << env->name << ": nothing spilled";
  return budget;
}

/// Replays the workload resident vs. spilled across all five strategies;
/// appends rows, returns the number of violated gates.
size_t RunEnvPair(TierEnv resident, TierEnv spilled, TablePrinter* table,
                  std::vector<TierRow>* rows, std::ostringstream* env_json) {
  size_t violations = 0;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++violations;
      std::printf("  [GATE] %s: %s\n", resident.name.c_str(), what.c_str());
    }
  };

  const size_t resident_bytes = resident.db->EstimateBytes();
  const size_t budget = SpillEnv(&spilled);
  StorageStats spill_shape = spilled.db->storage_stats();
  std::printf("  %s: %zu tuple(s), resident %.1f MiB, budget %.1f MiB, "
              "%zu table(s) spilled (%.1f MiB on disk)\n",
              resident.name.c_str(), resident.db->TotalTuples(),
              resident_bytes / 1048576.0, budget / 1048576.0,
              spill_shape.spilled_tables,
              spill_shape.spilled_bytes / 1048576.0);

  const TraversalKind kinds[] = {
      TraversalKind::kBottomUp, TraversalKind::kTopDown,
      TraversalKind::kBottomUpWithReuse, TraversalKind::kTopDownWithReuse,
      TraversalKind::kScoreBased};
  std::string spilled_sample_json;
  size_t total_page_reads = 0;
  size_t total_posting_reads = 0;
  for (TraversalKind kind : kinds) {
    const StrategyRun base = RunStrategy(resident, kind);
    const StrategyRun paged = RunStrategy(spilled, kind);
    const bool match = paged.signature == base.signature;
    gate(match, std::string(TraversalKindName(kind)) +
                    " classifies differently out-of-core");
    gate(base.stats.page_reads + base.stats.page_hits +
                 base.stats.posting_reads ==
             0,
         std::string(TraversalKindName(kind)) +
             " resident run touched the storage tier");
    gate(paged.stats.page_reads + paged.stats.page_hits > 0,
         std::string(TraversalKindName(kind)) +
             " spilled run saw no page traffic");
    // Cold-read gates are per-env: the pool and the posting LRU cache
    // persist across strategy runs, so later strategies may be fully
    // cache-served — but the first cannot be.
    total_page_reads += paged.stats.page_reads;
    total_posting_reads += paged.stats.posting_reads;
    if (spilled_sample_json.empty()) {
      spilled_sample_json = paged.sample_report_json;
    }
    for (const StrategyRun* run : {&base, &paged}) {
      const bool is_spilled = run == &paged;
      table->AddRow({resident.name, std::string(TraversalKindName(kind)),
                     is_spilled ? "spilled" : "resident",
                     std::to_string(run->stats.sql_queries),
                     std::to_string(run->stats.page_reads),
                     std::to_string(run->stats.page_hits),
                     std::to_string(run->stats.page_evictions),
                     std::to_string(run->stats.posting_reads),
                     Fmt(run->millis)});
      rows->push_back({resident.name, std::string(TraversalKindName(kind)),
                       is_spilled ? "spilled" : "resident", run->stats,
                       run->millis, match});
    }
  }

  gate(total_page_reads > 0, "spilled runs never read a page from disk");
  gate(total_posting_reads > 0,
       "spilled runs never read a posting list from disk");

  // Counters must be visible in the per-report JSON…
  gate(spilled_sample_json.find("\"page_reads\"") != std::string::npos,
       "report JSON does not expose page_reads");

  // …and in the service stats JSON. A spilled engine is a single-session
  // artifact (the pool and posting cache are not thread-safe), so the
  // service runs one worker on one shard.
  {
    ServiceOptions service_options;
    service_options.num_workers = 1;
    service_options.num_shards = 1;
    DebugService service(spilled.db.get(), spilled.lattice.get(),
                         spilled.index.get(), service_options);
    BatchResult batch = service.RunBatch(
        {spilled.queries.front(), spilled.queries.back()});
    gate(batch.status.ok(), "service batch failed on the spilled engine: " +
                                batch.status.ToString());
    const std::string stats_json = ServiceStatsToJson(batch.stats);
    gate(stats_json.find("\"page_reads\"") != std::string::npos,
         "service stats JSON does not expose page_reads");
    gate(batch.stats.page_reads + batch.stats.page_hits > 0,
         "service stats show no page traffic on the spilled engine");
    *env_json << ",\"service_stats\":" << stats_json;
  }

  StorageStats final_stats = spilled.db->storage_stats();
  *env_json << ",\"storage\":{\"resident_bytes\":" << resident_bytes
            << ",\"budget_bytes\":" << budget
            << ",\"spilled_tables\":" << final_stats.spilled_tables
            << ",\"spilled_bytes\":" << final_stats.spilled_bytes
            << ",\"page_hits\":" << final_stats.page_hits
            << ",\"page_reads\":" << final_stats.page_reads
            << ",\"page_evictions\":" << final_stats.page_evictions << "}";
  return violations;
}

TierEnv BuildDblifeEnv(bool smoke) {
  // Full mode: 10x toward the paper's snapshot; smoke keeps CI cheap.
  DblifeConfig config = EnvDblifeConfig().Scaled(smoke ? 0.05 : 10.0);
  auto dataset = GenerateDblife(config);
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  TierEnv env;
  env.name = smoke ? "dblife(0.05x)" : "dblife(10x)";
  env.db = std::move(dataset->db);
  env.schema = std::move(dataset->schema);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(env.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  env.lattice = std::move(*lattice);
  env.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*env.db));
  for (const WorkloadQuery& q : PaperWorkload()) {
    env.queries.push_back(q.text);
    if (smoke && env.queries.size() >= 3) break;
  }
  return env;
}

TierEnv BuildEcommerceEnv(bool smoke) {
  EcommerceConfig config;
  config.num_items = smoke ? 120 : 500;
  auto dataset = GenerateEcommerce(config);
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  TierEnv env;
  env.name = "ecommerce";
  env.db = std::move(dataset->db);
  env.schema = std::move(dataset->schema);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(env.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  env.lattice = std::move(*lattice);
  env.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*env.db));
  env.queries = {"saffron candle", "lavender soap"};
  if (!smoke) env.queries.push_back("handmade crimson candle");
  return env;
}

int Run(bool smoke, const std::string& out_path) {
  std::printf("Storage tier workload: resident vs out-of-core "
              "(buffer pool + on-disk postings), %s mode\n",
              smoke ? "smoke" : "full");

  size_t violations = 0;
  std::vector<TierRow> rows;
  TablePrinter table({"env", "strategy", "mode", "SQL", "pg reads", "pg hits",
                      "evictions", "posting rd", "ms"});
  std::ostringstream env_jsons;

  {
    std::ostringstream env_json;
    violations += RunEnvPair(BuildDblifeEnv(smoke), BuildDblifeEnv(smoke),
                             &table, &rows, &env_json);
    env_jsons << "{\"env\":\"dblife\"" << env_json.str() << "}";
  }
  {
    std::ostringstream env_json;
    violations += RunEnvPair(BuildEcommerceEnv(smoke),
                             BuildEcommerceEnv(smoke), &table, &rows,
                             &env_json);
    env_jsons << ",{\"env\":\"ecommerce\"" << env_json.str() << "}";
  }
  table.Print();

  {
    std::ostringstream json;
    json << "{\"bench\":\"storage_tier_workload\",\"smoke\":"
         << (smoke ? "true" : "false") << ",\"runs\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) json << ',';
      json << rows[i].ToJson();
    }
    json << "],\"envs\":[" << env_jsons.str() << "]"
         << ",\"violations\":" << violations << '}';
    std::ofstream f(out_path);
    if (f) {
      f << json.str() << '\n';
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }
  }

  if (violations > 0) {
    std::printf("\nSTORAGE TIER GATE FAILED: %zu violation(s)\n", violations);
    return 1;
  }
  std::printf("\nSTORAGE TIER GATE OK: classifications bit-identical "
              "resident vs out-of-core, page traffic visible end to end\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  // The bench compares resident vs spilled under its own budget; a global
  // KWSDBG_MEMORY_BUDGET would pre-spill the "resident" side at dataset load.
  ::unsetenv("KWSDBG_MEMORY_BUDGET");
  bool smoke = false;
  std::string out_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  return kwsdbg::bench::Run(smoke, out_path);
}
