// Ablation: how much do the evaluator shortcuts matter?
//  (a) base-node resolution via the inverted index / catalog instead of SQL
//      (paper Alg. 3 GetBaseNodes) — on vs off;
//  (b) warm vs cold executor caches (join-column hash indexes + keyword
//      scan bitmaps), modeling a warm DBMS session vs a cold start.
#include <cstdio>

#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

struct Cell {
  size_t sql = 0;
  double millis = 0;
};

Cell RunWith(const BenchEnv& env, size_t level, const std::string& query,
             bool base_via_index, bool reuse_executor_across_interps) {
  Cell out;
  const Lattice& lattice = env.lattice(level);
  KeywordBinder binder(&env.schema(), &env.index(),
                       lattice.config().EffectiveKeywordCopies());
  BindingResult binding_result = binder.Bind(query);
  Executor shared(&env.db());
  EvalOptions eval;
  eval.base_nodes_via_index = base_via_index;
  auto strategy = MakeStrategy(TraversalKind::kBottomUpWithReuse);
  for (const KeywordBinding& binding : binding_result.interpretations) {
    PrunedLattice pl = PrunedLattice::Build(lattice, binding);
    if (pl.mtns().empty()) continue;
    Executor cold(&env.db());
    Executor* executor = reuse_executor_across_interps ? &shared : &cold;
    QueryEvaluator evaluator(&env.db(), executor, &pl, &env.index(), eval);
    auto result = strategy->Run(pl, &evaluator);
    KWSDBG_CHECK(result.ok()) << result.status().ToString();
    out.sql += result->stats.sql_queries;
    out.millis += result->stats.sql_millis;
  }
  return out;
}

void Run() {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  std::printf(
      "Ablation (level %zu, BUWR): evaluator shortcuts on/off\n", level);
  TablePrinter table({"query", "SQL (index)", "SQL (no index)",
                      "ms (warm)", "ms (cold)"});
  size_t with_idx = 0, without_idx = 0;
  double warm = 0, cold = 0;
  for (const WorkloadQuery& q : PaperWorkload()) {
    Cell a = RunWith(env, level, q.text, true, true);    // index + warm
    Cell b = RunWith(env, level, q.text, false, true);   // no index shortcut
    Cell c = RunWith(env, level, q.text, true, false);   // cold per interp
    table.AddRow({q.id, std::to_string(a.sql), std::to_string(b.sql),
                  Fmt(a.millis, 2), Fmt(c.millis, 2)});
    with_idx += a.sql;
    without_idx += b.sql;
    warm += a.millis;
    cold += c.millis;
  }
  table.Print();
  std::printf(
      "\ntotals: index shortcut removes %zu of %zu SQL executions "
      "(base-level nodes); cold caches cost %.1fx the warm-session time.\n",
      without_idx - with_idx, without_idx,
      warm == 0 ? 0.0 : cold / warm);
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
