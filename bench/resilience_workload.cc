// Resilience gate for the DebugService: replays the concurrent-service
// workload (DBLife + e-commerce, same sampling as
// concurrent_service_workload) under a fixed fault schedule and checks that
// every resilience layer does its job without ever changing a verdict:
//
//   baseline   — fault-free service run; the parity reference.
//   retry      — counted transient faults across storage / executor / cache
//                with retry budget > total scheduled fires: classifications
//                must stay bit-identical and zero queries may fail.
//   no-retry   — same schedule, retries disabled: affected queries must fail
//                with a typed *retryable* status (never a wrong verdict);
//                untouched queries stay bit-identical.
//   degraded   — always-on faults on the degrade-don't-fail paths (posting
//                lists, semijoin pass): bit-identical classifications with
//                nonzero fallback counters.
//   shed       — bounded admission queue: overload queries rejected with
//                kResourceExhausted, the rest classified identically.
//
// Emits BENCH_resilience.json (throughput, retries, fallbacks, shed) and
// exits nonzero on any parity failure or any phase whose counters prove the
// fault schedule never engaged.
//
//   ./resilience_workload --workers=8 [--smoke] [--out=BENCH_resilience.json]
//
// Environment knobs: KWSDBG_SEED / KWSDBG_SCALE / KWSDBG_MAX_LEVEL as in
// bench_util.h, plus KWSDBG_WORKLOAD_SEED (query sampling, default 7).
// The fault schedules are fixed and printed, so every run is reproducible.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "datasets/ecommerce.h"
#include "datasets/query_generator.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

uint64_t EnvWorkloadSeed() {
  const char* v = std::getenv("KWSDBG_WORKLOAD_SEED");
  return v == nullptr ? 7 : static_cast<uint64_t>(std::atoll(v));
}

// Counted transient outages in three layers; total fires = 9, so any retry
// budget >= 9 per query is provably unexhaustible by this schedule.
constexpr char kTransientSchedule[] =
    "cache.verdict.lookup=unavailable,times=3;"
    "storage.table.read=unavailable,times=3;"
    "executor.join.probe=resource-exhausted,times=3";
constexpr size_t kTransientFires = 9;

// Always-on faults on the two degraded-mode paths.
constexpr char kDegradedSchedule[] =
    "executor.text_index=unavailable;executor.semijoin=unavailable";

/// One phase's outcome, for the JSON artifact and the gate verdict.
struct PhaseMetrics {
  std::string phase;
  size_t queries = 0;
  size_t mismatches = 0;  ///< Wrong/missing classifications vs. baseline.
  size_t failed = 0;
  size_t retries = 0;
  size_t shed = 0;
  size_t index_fallbacks = 0;
  size_t semijoin_fallbacks = 0;
  size_t fault_fires = 0;
  double wall_millis = 0;
  double qps = 0;

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\"phase\":\"" << phase << "\",\"queries\":" << queries
        << ",\"mismatches\":" << mismatches << ",\"failed\":" << failed
        << ",\"retries\":" << retries << ",\"shed\":" << shed
        << ",\"index_fallbacks\":" << index_fallbacks
        << ",\"semijoin_fallbacks\":" << semijoin_fallbacks
        << ",\"fault_fires\":" << fault_fires
        << ",\"wall_millis\":" << wall_millis << ",\"qps\":" << qps << "}";
    return out.str();
  }
};

PhaseMetrics Collect(const char* phase, const BatchResult& batch,
                     const std::vector<std::string>& baseline_sigs,
                     bool failures_expected) {
  PhaseMetrics m;
  m.phase = phase;
  m.queries = batch.results.size();
  m.failed = batch.stats.failed;
  m.retries = batch.stats.retries;
  m.shed = batch.stats.shed;
  m.index_fallbacks = batch.stats.index_fallbacks;
  m.semijoin_fallbacks = batch.stats.semijoin_fallbacks;
  m.fault_fires = FaultInjector::Global().TotalFires();
  m.wall_millis = batch.stats.wall_millis;
  m.qps = batch.stats.queries_per_second;
  for (size_t i = 0; i < batch.results.size(); ++i) {
    const QueryResult& r = batch.results[i];
    if (!r.status.ok()) {
      // A failure is a parity violation unless this phase expects failures
      // AND the status is the typed retryable kind resilience promises.
      if (!failures_expected || !r.status.IsRetryable()) {
        ++m.mismatches;
        std::printf("  [FAIL] %s query %zu: unexpected status %s\n", phase, i,
                    r.status.ToString().c_str());
      }
      continue;
    }
    if (r.report.ClassificationSignature() != baseline_sigs[i]) {
      ++m.mismatches;
      std::printf("  [FAIL] %s query %zu: classification diverged\n", phase,
                  i);
    }
  }
  return m;
}

/// Runs all phases on one dataset; appends metrics and returns the number of
/// gate violations.
size_t RunCase(const char* name, const Database* db, const Lattice* lattice,
               const InvertedIndex* index,
               const std::vector<std::string>& queries, size_t workers,
               std::vector<PhaseMetrics>* all_metrics) {
  std::printf("\n== %s: %zu queries, %zu workers ==\n", name, queries.size(),
              workers);
  size_t violations = 0;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("  [GATE] %s: %s\n", name, what);
    }
  };

  ServiceOptions base_options;
  base_options.num_workers = workers;
  base_options.retry_backoff_base_millis = 0.1;  // Keep gate runs fast.
  base_options.retry_backoff_max_millis = 1.0;

  // Phase 0: fault-free baseline — the reference signatures.
  std::vector<std::string> baseline_sigs;
  {
    DebugService service(db, lattice, index, base_options);
    BatchResult batch = service.RunBatch(queries);
    for (const QueryResult& r : batch.results) {
      KWSDBG_CHECK(r.status.ok()) << r.status.ToString();
      baseline_sigs.push_back(r.report.ClassificationSignature());
    }
    PhaseMetrics m = Collect("baseline", batch, baseline_sigs, false);
    std::printf("  baseline: %s\n", batch.stats.ToString().c_str());
    all_metrics->push_back(m);
    gate(m.mismatches == 0, "baseline inconsistent with itself");
  }

  // Phase 1: transient faults absorbed by retries.
  {
    ScopedFaultInjection faults(kTransientSchedule);
    ServiceOptions options = base_options;
    options.max_retries = kTransientFires + 3;  // Provably unexhaustible.
    DebugService service(db, lattice, index, options);
    BatchResult batch = service.RunBatch(queries);
    PhaseMetrics m = Collect("retry", batch, baseline_sigs, false);
    std::printf("  retry: %zu fire(s) absorbed by %zu retried attempt(s) "
                "[%s]\n",
                m.fault_fires, m.retries,
                FaultInjector::Global().Summary().c_str());
    all_metrics->push_back(m);
    gate(m.mismatches == 0, "retry phase changed a classification");
    gate(m.failed == 0, "retry phase failed a query despite budget");
    gate(m.fault_fires > 0, "transient schedule never fired");
    gate(m.retries > 0, "faults fired but nothing was retried");
  }

  // Phase 2: same schedule, retries disabled — typed failures, no lies.
  {
    ScopedFaultInjection faults(kTransientSchedule);
    ServiceOptions options = base_options;
    options.max_retries = 0;
    DebugService service(db, lattice, index, options);
    BatchResult batch = service.RunBatch(queries);
    PhaseMetrics m = Collect("no_retry", batch, baseline_sigs, true);
    std::printf("  no-retry: %zu typed failure(s) from %zu fire(s)\n",
                m.failed, m.fault_fires);
    all_metrics->push_back(m);
    gate(m.mismatches == 0,
         "no-retry phase produced a wrong verdict or untyped failure");
    gate(m.failed > 0, "no-retry phase absorbed faults it cannot retry");
    gate(m.retries == 0, "retries happened with max_retries=0");
  }

  // Phase 3: degraded mode — slow paths, identical verdicts.
  {
    ScopedFaultInjection faults(kDegradedSchedule);
    DebugService service(db, lattice, index, base_options);
    BatchResult batch = service.RunBatch(queries);
    PhaseMetrics m = Collect("degraded", batch, baseline_sigs, false);
    std::printf("  degraded: %zu index fallback(s), %zu semijoin "
                "fallback(s)\n",
                m.index_fallbacks, m.semijoin_fallbacks);
    all_metrics->push_back(m);
    gate(m.mismatches == 0, "degraded phase changed a classification");
    gate(m.failed == 0, "degraded phase failed a query");
    gate(m.index_fallbacks + m.semijoin_fallbacks > 0,
         "degraded phase never took a fallback path");
  }

  // Phase 4: overload — bounded queue sheds typed, the rest classify true.
  {
    ServiceOptions options = base_options;
    options.num_workers = 1;
    options.max_queue_depth = 1;
    DebugService service(db, lattice, index, options);
    BatchResult batch = service.RunBatch(queries);
    PhaseMetrics m = Collect("shed", batch, baseline_sigs, true);
    std::printf("  shed: %zu of %zu quer(ies) rejected by admission "
                "control\n",
                m.shed, m.queries);
    all_metrics->push_back(m);
    gate(m.mismatches == 0,
         "shed phase produced a wrong verdict or untyped rejection");
    gate(m.shed > 0, "bounded queue never shed under overload");
    gate(m.shed == m.failed, "failures beyond the shed queries");
  }

  return violations;
}

int Run(size_t workers, bool smoke, const std::string& out_path) {
  const uint64_t workload_seed = EnvWorkloadSeed();
  std::printf("# workload seed: %llu (override with KWSDBG_WORKLOAD_SEED)\n",
              static_cast<unsigned long long>(workload_seed));
  std::printf("# transient schedule: %s\n# degraded schedule: %s\n",
              kTransientSchedule, kDegradedSchedule);

  size_t violations = 0;
  std::vector<PhaseMetrics> dblife_metrics;
  std::vector<PhaseMetrics> ecommerce_metrics;

  // Case 1: DBLife.
  {
    const size_t level = std::min<size_t>(smoke ? 3 : 5, EnvMaxLevel());
    BenchEnv env({level});
    QueryGeneratorConfig gconfig;
    gconfig.seed = workload_seed;
    gconfig.min_keywords = 2;
    gconfig.max_keywords = 3;
    RandomQueryGenerator generator(&env.index(), gconfig);
    const std::vector<std::string> queries = generator.Batch(smoke ? 6 : 24);
    violations += RunCase("DBLife", &env.db(), &env.lattice(level),
                          &env.index(), queries, workers, &dblife_metrics);
  }

  // Case 2: e-commerce catalog, always including the paper's motivating
  // non-answer so the gate covers a dead-MTN frontier under faults.
  {
    EcommerceConfig config;
    config.seed = workload_seed;
    config.num_items = smoke ? 200 : 500;
    auto dataset = GenerateEcommerce(config);
    KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
    InvertedIndex index = InvertedIndex::Build(*dataset->db);
    LatticeConfig lconfig;
    lconfig.max_joins = 2;
    lconfig.num_keyword_copies = 2;
    auto lattice = LatticeGenerator::Generate(dataset->schema, lconfig);
    KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
    QueryGeneratorConfig gconfig;
    gconfig.seed = workload_seed + 1;
    gconfig.min_keywords = 1;
    gconfig.max_keywords = 2;
    RandomQueryGenerator generator(&index, gconfig);
    std::vector<std::string> queries = generator.Batch(smoke ? 5 : 15);
    queries.push_back("saffron candle");
    violations += RunCase("e-commerce", dataset->db.get(), lattice->get(),
                          &index, queries, workers, &ecommerce_metrics);
  }

  // Artifact.
  {
    std::ostringstream json;
    auto dump = [&json](const char* name,
                        const std::vector<PhaseMetrics>& metrics) {
      json << '"' << name << "\":[";
      for (size_t i = 0; i < metrics.size(); ++i) {
        if (i > 0) json << ',';
        json << metrics[i].ToJson();
      }
      json << ']';
    };
    json << "{\"bench\":\"resilience_workload\",\"workload_seed\":"
         << workload_seed << ",\"smoke\":" << (smoke ? "true" : "false")
         << ",\"transient_schedule\":\"" << kTransientSchedule
         << "\",\"degraded_schedule\":\"" << kDegradedSchedule << "\",";
    dump("dblife", dblife_metrics);
    json << ',';
    dump("ecommerce", ecommerce_metrics);
    json << ",\"violations\":" << violations << '}';
    std::ofstream f(out_path);
    if (f) {
      f << json.str() << '\n';
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }
  }

  if (violations > 0) {
    std::printf("\nRESILIENCE GATE FAILED: %zu violation(s)\n", violations);
    return 1;
  }
  std::printf("\nRESILIENCE GATE OK: parity held through retry, no-retry, "
              "degraded, and shed phases\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  size_t workers = 8;
  bool smoke = false;
  std::string out_path = "BENCH_resilience.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--workers=N] [--smoke] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (workers == 0) workers = 1;
  return kwsdbg::bench::Run(workers, smoke, out_path);
}
