// Shared plumbing for the paper-reproduction benchmarks: one DBLife instance
// plus lattices at the paper's levels (3, 5, 7), and a fixed-width table
// printer so every bench prints rows comparable to the paper's figures.
//
// Environment knobs (all optional):
//   KWSDBG_SCALE      — dataset scale factor (default 1.0; the paper's
//                       801k-tuple snapshot corresponds to roughly 8-10x).
//   KWSDBG_MAX_LEVEL  — highest lattice level to benchmark (default 7).
//   KWSDBG_SEED       — dataset seed (default 42).
#ifndef KWSDBG_BENCH_BENCH_UTIL_H_
#define KWSDBG_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datasets/dblife.h"
#include "datasets/workload.h"
#include "lattice/lattice_generator.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace bench {

/// Levels the paper reports (Table 3/4, Fig. 13): subset of {3, 5, 7}
/// capped by KWSDBG_MAX_LEVEL.
std::vector<size_t> PaperLevels();

/// The DBLife instance + index + per-level lattices, built once.
class BenchEnv {
 public:
  /// Builds the dataset and the lattices for `levels` (level L means
  /// max_joins = L - 1). Prints a short provenance header to stdout.
  explicit BenchEnv(const std::vector<size_t>& levels);

  const Database& db() const { return *dataset_.db; }
  const SchemaGraph& schema() const { return dataset_.schema; }
  const InvertedIndex& index() const { return index_; }

  /// Lattice for the given level (must be one of the requested levels).
  const Lattice& lattice(size_t level) const;

  double lattice_gen_millis(size_t level) const;

 private:
  DblifeDataset dataset_;
  InvertedIndex index_;
  std::map<size_t, std::unique_ptr<Lattice>> lattices_;
  std::map<size_t, double> gen_millis_;
};

/// Reads the scale/seed knobs from the environment.
DblifeConfig EnvDblifeConfig();
size_t EnvMaxLevel();

/// Minimal fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Renders with a header rule; call once, after all rows.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string Fmt(double v, int digits = 1);

}  // namespace bench
}  // namespace kwsdbg

#endif  // KWSDBG_BENCH_BENCH_UTIL_H_
