// Scale-out gate + open-loop load harness for the sharded DebugService.
// Three phases:
//
//   parity     — serial NonAnswerDebugger vs. a sharded, work-stealing
//                service on DBLife and the e-commerce catalog under all
//                five traversal strategies: classifications must be
//                bit-identical (sharding changes where verdicts live,
//                never what they say).
//   scaling    — closed-loop shard sweep 1 -> N (workers == shards):
//                steady-state (warm) batch throughput per shard count.
//                Full release runs gate near-linear scaling whenever the
//                host has the cores to express it (shards beyond the core
//                count timeshare, they don't parallelize); every run gates
//                QPS > 0 (the zero-wall-time regression made this vacuous
//                before).
//   open-loop  — constant-arrival-rate injection through Submit (arrivals
//                do NOT wait for completions, unlike RunBatch's closed
//                loop, so queueing collapse is observable): sweeps offered
//                rates around the calibrated closed-loop capacity and
//                reports p50/p99/p999 end-to-end latency (queue + exec),
//                shed fraction, and the max sustainable QPS — the highest
//                offered rate whose p99 meets the SLO with <= 1% shed.
//
// Emits BENCH_service_scale.json (per-shard-count scaling rows, per-rate
// open-loop rows, max sustainable QPS, SLO).
//
//   ./service_scale_workload [--smoke] [--shards=N] [--workers=N]
//                            [--queries=N] [--out=BENCH_service_scale.json]
//
// --queries is the total open-loop injection budget across the rate sweep
// (default 1,000,000 full / 400 smoke). Environment knobs: KWSDBG_SEED /
// KWSDBG_SCALE / KWSDBG_MAX_LEVEL as in bench_util.h, KWSDBG_WORKLOAD_SEED
// (query sampling, default 7), KWSDBG_SLO_MS (open-loop p99 SLO, default
// 50). Every knob is printed, so any run is reproducible from its log.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "datasets/ecommerce.h"
#include "datasets/query_generator.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

uint64_t EnvWorkloadSeed() {
  const char* v = std::getenv("KWSDBG_WORKLOAD_SEED");
  return v == nullptr ? 7 : static_cast<uint64_t>(std::atoll(v));
}

double EnvSloMillis() {
  const char* v = std::getenv("KWSDBG_SLO_MS");
  return v == nullptr ? 50.0 : std::atof(v);
}

constexpr TraversalKind kAllStrategies[] = {
    TraversalKind::kBottomUp, TraversalKind::kTopDown,
    TraversalKind::kBottomUpWithReuse, TraversalKind::kTopDownWithReuse,
    TraversalKind::kScoreBased};

// ---------------------------------------------------------------------------
// Phase 1: serial vs. sharded parity, all strategies.

size_t ParityCase(const char* name, const Database* db,
                  const Lattice* lattice, const InvertedIndex* index,
                  const std::vector<std::string>& queries, size_t shards) {
  size_t mismatches = 0;
  for (TraversalKind strategy : kAllStrategies) {
    DebuggerOptions debugger_options;
    debugger_options.strategy = strategy;

    std::vector<std::string> serial_sigs;
    serial_sigs.reserve(queries.size());
    {
      NonAnswerDebugger serial(db, lattice, index, debugger_options);
      for (const std::string& q : queries) {
        auto report = serial.Debug(q);
        KWSDBG_CHECK(report.ok()) << report.status().ToString();
        serial_sigs.push_back(report->ClassificationSignature());
      }
    }

    ServiceOptions options;
    options.num_workers = shards;
    options.num_shards = shards;
    options.work_stealing = true;
    options.handoff_batch = 2;
    options.debugger = debugger_options;
    DebugService service(db, lattice, index, options);
    BatchResult batch = service.RunBatch(queries);
    size_t case_mismatches = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryResult& r = batch.results[i];
      if (!r.status.ok()) {
        ++case_mismatches;
        std::printf("  [FAIL] %s/%s \"%s\": %s\n", name,
                    std::string(TraversalKindName(strategy)).c_str(),
                    queries[i].c_str(), r.status.ToString().c_str());
        continue;
      }
      if (r.report.ClassificationSignature() != serial_sigs[i]) {
        ++case_mismatches;
        std::printf("  [FAIL] %s/%s \"%s\": sharded classification differs\n",
                    name, std::string(TraversalKindName(strategy)).c_str(),
                    queries[i].c_str());
      }
    }
    std::printf("  %s / %-4s: %zu queries, %zu shard(s), %zu steal(s), "
                "%zu mismatch(es)\n",
                name, std::string(TraversalKindName(strategy)).c_str(),
                queries.size(), shards, batch.stats.steals, case_mismatches);
    mismatches += case_mismatches;
  }
  return mismatches;
}

// ---------------------------------------------------------------------------
// Phase 2: closed-loop shard scaling.

struct ScalingRow {
  size_t shards = 0;
  double qps = 0;
  double p50 = 0;
  double p99 = 0;
  size_t steals = 0;
};

ScalingRow ScalingPoint(const Database* db, const Lattice* lattice,
                        const InvertedIndex* index,
                        const std::vector<std::string>& queries,
                        size_t shards, size_t repeats) {
  ServiceOptions options;
  options.num_workers = shards;
  options.num_shards = shards;
  options.work_stealing = true;
  DebugService service(db, lattice, index, options);
  // Warm-up pass, then measure steady state. Steady state is the honest
  // scaling claim: a cold batch does MORE total work at higher shard
  // counts (each shard builds its own flat-index arenas, and two distinct
  // queries homed on different shards can no longer share sub-network
  // verdicts), so cold throughput conflates partition-duplication cost
  // with hot-path scaling. Warm batches isolate what sharding is for: the
  // queue, handoff, and cache-partition path under concurrency.
  BatchResult warmup = service.RunBatch(queries);
  KWSDBG_CHECK(warmup.status.ok()) << warmup.status.ToString();
  Timer wall;
  ScalingRow row;
  row.shards = shards;
  for (size_t rep = 0; rep < repeats; ++rep) {
    BatchResult batch = service.RunBatch(queries);
    KWSDBG_CHECK(batch.status.ok()) << batch.status.ToString();
    size_t failed = 0;
    for (const QueryResult& r : batch.results) {
      if (!r.status.ok()) ++failed;
    }
    KWSDBG_CHECK(failed == 0) << failed << " queries failed during scaling";
    row.p50 = batch.stats.p50_millis;
    row.p99 = batch.stats.p99_millis;
    row.steals += batch.stats.steals;
  }
  row.qps = static_cast<double>(queries.size() * repeats) /
            std::max(wall.ElapsedMillis(), 0.001) * 1000.0;
  return row;
}

// ---------------------------------------------------------------------------
// Phase 3: open-loop constant-arrival-rate sweep.

struct OpenLoopRow {
  double offered_qps = 0;    ///< Configured arrival rate.
  double achieved_qps = 0;   ///< Completions / window.
  size_t injected = 0;
  size_t shed = 0;
  double shed_fraction = 0;
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;
  size_t steals = 0;
  bool meets_slo = false;
};

/// Injects `count` queries at a constant `rate` (queries/sec) through
/// Submit — arrivals never wait for completions — and aggregates end-to-end
/// (queue + exec) latency over the completions.
OpenLoopRow OpenLoopPoint(DebugService* service,
                          const std::vector<std::string>& pool, double rate,
                          size_t count, double slo_millis) {
  OpenLoopRow row;
  row.offered_qps = rate;
  row.injected = count;

  std::vector<QueryResult> completions(count);
  std::atomic<size_t> done{0};
  const auto start = std::chrono::steady_clock::now();
  const double interval_ns = 1e9 / rate;
  for (size_t k = 0; k < count; ++k) {
    // Open loop: arrival k fires at start + k/rate regardless of how far
    // behind the service is. sleep_until keeps the schedule drift-free.
    std::this_thread::sleep_until(
        start + std::chrono::nanoseconds(
                    static_cast<int64_t>(interval_ns * static_cast<double>(k))));
    const size_t slot = k;
    const Status accepted = service->Submit(
        pool[k % pool.size()], /*deadline_millis=*/0,
        [&completions, &done, slot](QueryResult r) {
          completions[slot] = std::move(r);
          done.fetch_add(1, std::memory_order_release);
        });
    if (!accepted.ok()) {
      ++row.shed;
      completions[slot].shed = true;  // excluded from the latency sample
      completions[slot].status = accepted;
      done.fetch_add(1, std::memory_order_release);
    }
  }
  service->WaitIdle();
  KWSDBG_CHECK(done.load() == count) << "lost completions";
  const double window_millis =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // End-to-end latency: an open-loop client experiences queue wait + exec.
  std::vector<QueryResult> measured = std::move(completions);
  for (QueryResult& r : measured) {
    r.exec_millis += r.queue_millis;
  }
  const ServiceStats stats = ComputeServiceStats(measured, window_millis);
  row.achieved_qps = static_cast<double>(count - row.shed) /
                     std::max(window_millis, 0.001) * 1000.0;
  row.shed_fraction =
      static_cast<double>(row.shed) / static_cast<double>(count);
  row.p50 = stats.p50_millis;
  row.p99 = stats.p99_millis;
  row.p999 = stats.p999_millis;
  row.max = stats.max_millis;
  row.steals = stats.steals;
  row.meets_slo = row.p99 <= slo_millis && row.shed_fraction <= 0.01;
  return row;
}

// ---------------------------------------------------------------------------

void WriteJson(const std::string& path, const std::vector<ScalingRow>& scaling,
               const std::vector<OpenLoopRow>& open_loop,
               double max_sustainable_qps, double slo_millis, size_t shards,
               uint64_t workload_seed) {
  std::ostringstream out;
  out << "{\"bench\":\"service_scale\",\"shards\":" << shards
      << ",\"workload_seed\":" << workload_seed
      << ",\"slo_millis\":" << slo_millis
      << ",\"max_sustainable_qps\":" << max_sustainable_qps
      << ",\"shard_scaling\":[";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    if (i > 0) out << ',';
    out << "{\"shards\":" << r.shards << ",\"qps\":" << r.qps
        << ",\"p50_millis\":" << r.p50 << ",\"p99_millis\":" << r.p99
        << ",\"steals\":" << r.steals << '}';
  }
  out << "],\"open_loop\":[";
  for (size_t i = 0; i < open_loop.size(); ++i) {
    const OpenLoopRow& r = open_loop[i];
    if (i > 0) out << ',';
    out << "{\"offered_qps\":" << r.offered_qps
        << ",\"achieved_qps\":" << r.achieved_qps
        << ",\"injected\":" << r.injected << ",\"shed\":" << r.shed
        << ",\"shed_fraction\":" << r.shed_fraction
        << ",\"p50_millis\":" << r.p50 << ",\"p99_millis\":" << r.p99
        << ",\"p999_millis\":" << r.p999 << ",\"max_millis\":" << r.max
        << ",\"steals\":" << r.steals
        << ",\"meets_slo\":" << (r.meets_slo ? "true" : "false") << '}';
  }
  out << "]}";
  std::ofstream f(path);
  f << out.str() << '\n';
  std::printf("\nwrote %s\n", path.c_str());
}

int Run(size_t shards, size_t open_loop_queries, bool smoke,
        const std::string& out_path) {
  const uint64_t workload_seed = EnvWorkloadSeed();
  const double slo_millis = EnvSloMillis();
  std::printf("# workload seed: %llu, SLO p99 <= %.1f ms (KWSDBG_SLO_MS), "
              "%zu shard(s)\n",
              static_cast<unsigned long long>(workload_seed), slo_millis,
              shards);

  size_t mismatches = 0;

  // DBLife environment, shared by every phase.
  const size_t level = std::min<size_t>(3, EnvMaxLevel());
  BenchEnv env({level});
  QueryGeneratorConfig gconfig;
  gconfig.seed = workload_seed;
  gconfig.min_keywords = 2;
  gconfig.max_keywords = 3;
  RandomQueryGenerator generator(&env.index(), gconfig);

  // --- Phase 1: parity. -----------------------------------------------
  std::printf("\n== parity: serial vs. sharded, all strategies ==\n");
  {
    const std::vector<std::string> queries = generator.Batch(smoke ? 4 : 16);
    mismatches += ParityCase("DBLife", &env.db(), &env.lattice(level),
                             &env.index(), queries, shards);
  }
  {
    EcommerceConfig config;
    config.seed = workload_seed;
    config.num_items = smoke ? 200 : 500;
    auto dataset = GenerateEcommerce(config);
    KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
    InvertedIndex index = InvertedIndex::Build(*dataset->db);
    LatticeConfig lconfig;
    lconfig.max_joins = 2;
    lconfig.num_keyword_copies = 2;
    auto lattice = LatticeGenerator::Generate(dataset->schema, lconfig);
    KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
    QueryGeneratorConfig egconfig;
    egconfig.seed = workload_seed + 1;
    egconfig.min_keywords = 1;
    egconfig.max_keywords = 2;
    RandomQueryGenerator egen(&index, egconfig);
    std::vector<std::string> queries = egen.Batch(smoke ? 4 : 12);
    queries.push_back("saffron candle");  // always cover a dead-MTN frontier
    mismatches += ParityCase("e-commerce", dataset->db.get(), lattice->get(),
                             &index, queries, shards);
  }
  if (mismatches > 0) {
    std::printf("\nPARITY FAILED: %zu classification(s) differ under the "
                "sharded service\n", mismatches);
    return 1;
  }
  std::printf("parity OK: sharded classifications bit-identical to serial\n");

  // --- Phase 2: closed-loop shard scaling. ----------------------------
  std::printf("\n== closed-loop shard scaling (workers == shards) ==\n");
  const std::vector<std::string> scaling_queries =
      generator.Batch(smoke ? 16 : 128);
  const size_t scaling_repeats = smoke ? 2 : 16;
  std::vector<ScalingRow> scaling;
  TablePrinter scaling_table({"shards", "qps", "p50 ms", "p99 ms", "steals"});
  for (size_t s = 1; s <= shards; s *= 2) {
    ScalingRow row = ScalingPoint(&env.db(), &env.lattice(level),
                                  &env.index(), scaling_queries, s,
                                  scaling_repeats);
    scaling_table.AddRow({std::to_string(row.shards), Fmt(row.qps, 1),
                          Fmt(row.p50, 2), Fmt(row.p99, 2),
                          std::to_string(row.steals)});
    scaling.push_back(row);
  }
  scaling_table.Print();
  for (const ScalingRow& row : scaling) {
    // QPS-floor gate: a zero here previously meant the wall-clock rounded
    // to 0 and the stats reported a vacuous throughput, not that the
    // service ran infinitely slowly.
    KWSDBG_CHECK(row.qps > 0.0)
        << "shard count " << row.shards << " reported non-positive QPS";
  }
#ifdef NDEBUG
  if (!smoke && scaling.size() >= 2) {
    // Near-linear scale-out gate (full release runs only: debug builds and
    // smoke sizes are dominated by fixed costs). Shards beyond the host's
    // core count timeshare instead of parallelizing, so the gate demands
    // speedup only up to the hardware: on a 1-core container the sweep
    // still runs and gates QPS > 0, but near-linear is unprovable there.
    // Generous constant to stay robust on loaded CI machines.
    const ScalingRow& first = scaling.front();
    const ScalingRow& last = scaling.back();
    const size_t cores = std::max<size_t>(std::thread::hardware_concurrency(), 1);
    const double parallelism =
        static_cast<double>(std::min(last.shards, cores)) /
        static_cast<double>(std::min(first.shards, cores));
    const double speedup = last.qps / std::max(first.qps, 1e-9);
    const double floor = std::max(1.2, 0.4 * parallelism);
    if (parallelism >= 2.0) {
      KWSDBG_CHECK(speedup >= floor)
          << "scale-out collapsed: " << first.shards << " -> " << last.shards
          << " shards sped up only " << speedup << "x (floor " << floor
          << "x, " << cores << " cores)";
      std::printf("scaling gate OK: %zu -> %zu shards = %.2fx (floor %.2fx)\n",
                  first.shards, last.shards, speedup, floor);
    } else {
      std::printf("scaling gate skipped: host has %zu core(s), not enough to "
                  "express %zu-shard parallelism (measured %.2fx)\n",
                  cores, last.shards, speedup);
    }
  }
#endif

  // --- Phase 3: open-loop arrival-rate sweep. --------------------------
  std::printf("\n== open-loop sweep (%zu total arrivals, SLO p99 <= %.1f ms,"
              " shed <= 1%%) ==\n",
              open_loop_queries, slo_millis);
  ServiceOptions options;
  options.num_workers = shards;
  options.num_shards = shards;
  options.work_stealing = true;
  // Bounded queues so past-saturation rates shed instead of queueing
  // without limit (an unbounded open loop never reaches steady state).
  options.max_queue_depth = 512;
  DebugService service(&env.db(), &env.lattice(level), &env.index(), options);

  // Query pool cycled by the injector: small enough that the verdict tiers
  // warm up, as a production service's would.
  const std::vector<std::string> pool = generator.Batch(smoke ? 8 : 64);
  // Calibrate capacity with a warm closed-loop batch, then sweep offered
  // rates around it.
  service.RunBatch(pool);  // warm
  BatchResult calibration = service.RunBatch(pool);
  const double capacity =
      std::max(calibration.stats.queries_per_second, 1.0);
  std::printf("calibrated closed-loop capacity: %.0f qps (warm)\n", capacity);

  const double fractions[] = {0.25, 0.5, 0.75, 0.9, 1.1};
  const size_t per_rate = std::max<size_t>(
      open_loop_queries / (sizeof(fractions) / sizeof(fractions[0])), 10);
  std::vector<OpenLoopRow> open_loop;
  double max_sustainable_qps = 0;
  TablePrinter ol_table({"offered qps", "achieved", "shed %", "p50 ms",
                         "p99 ms", "p999 ms", "SLO"});
  for (const double fraction : fractions) {
    const double rate = std::max(capacity * fraction, 1.0);
    OpenLoopRow row =
        OpenLoopPoint(&service, pool, rate, per_rate, slo_millis);
    ol_table.AddRow({Fmt(row.offered_qps, 0), Fmt(row.achieved_qps, 0),
                     Fmt(row.shed_fraction * 100.0, 2), Fmt(row.p50, 3),
                     Fmt(row.p99, 3), Fmt(row.p999, 3),
                     row.meets_slo ? "ok" : "MISS"});
    if (row.meets_slo) {
      max_sustainable_qps = std::max(max_sustainable_qps, row.achieved_qps);
    }
    open_loop.push_back(row);
  }
  ol_table.Print();
  std::printf("max sustainable: %.0f qps (highest offered rate meeting the "
              "SLO)\n", max_sustainable_qps);
  // At the lowest offered rate the service is far below capacity; if even
  // that misses the SLO the harness (or the service) is broken.
  KWSDBG_CHECK(!open_loop.empty());
  KWSDBG_CHECK(max_sustainable_qps > 0.0)
      << "no offered rate met the SLO — even " << open_loop.front().offered_qps
      << " qps (25% of calibrated capacity) missed p99 <= " << slo_millis
      << " ms or shed > 1%";

  WriteJson(out_path, scaling, open_loop, max_sustainable_qps, slo_millis,
            shards, workload_seed);
  std::printf("\nSERVICE SCALE OK\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  size_t shards = 4;
  size_t queries = 0;  // 0 = default per mode
  bool smoke = false;
  std::string out_path = "BENCH_service_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<size_t>(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      // Workers track shards in this bench (one worker per shard); the flag
      // is accepted as an alias so harness scripts can pass either.
      shards = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--shards=N] [--workers=N] "
                   "[--queries=N] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards == 0) shards = 1;
  if (queries == 0) queries = smoke ? 400 : 1000000;
  return kwsdbg::bench::Run(shards, queries, smoke, out_path);
}
