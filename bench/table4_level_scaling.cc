// Reproduces Table 4: the number of SQL queries each strategy executes for
// Q3 ("Agrawal Chaudhuri Das") as the lattice level grows from 3 to 7.
#include <cstdio>

#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

void Run() {
  const std::vector<size_t> levels = PaperLevels();
  BenchEnv env(levels);
  const WorkloadQuery& q3 = PaperWorkload()[2];
  KWSDBG_CHECK(q3.id == "Q3");
  std::printf("Table 4: SQL queries for %s (\"%s\") per level\n",
              q3.id.c_str(), q3.text.c_str());
  TablePrinter table({"level", "BU", "BUWR", "TD", "TDWR", "SBH"});
  std::vector<StrategyRun> level7_runs;
  for (size_t level : levels) {
    std::vector<std::string> row = {std::to_string(level)};
    for (TraversalKind kind :
         {TraversalKind::kBottomUp, TraversalKind::kBottomUpWithReuse,
          TraversalKind::kTopDown, TraversalKind::kTopDownWithReuse,
          TraversalKind::kScoreBased}) {
      auto strategy = MakeStrategy(kind);
      StrategyRun run = RunStrategyOnQuery(env, level, q3.text, strategy.get());
      row.push_back(std::to_string(run.sql_queries));
      if (level == levels.back()) level7_runs.push_back(run);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  if (level7_runs.size() == 5) {
    auto pct = [](size_t reduced, size_t base) {
      return base == 0 ? 0.0
                       : 100.0 * (1.0 - static_cast<double>(reduced) /
                                            static_cast<double>(base));
    };
    std::printf(
        "\nat level %zu: BUWR saves %.0f%% vs BU (paper: 28%%), TDWR saves "
        "%.0f%% vs TD (paper: 52%%), SBH saves %.0f%% vs BU (paper: "
        "79%%).\n",
        levels.back(),
        pct(level7_runs[1].sql_queries, level7_runs[0].sql_queries),
        pct(level7_runs[3].sql_queries, level7_runs[2].sql_queries),
        pct(level7_runs[4].sql_queries, level7_runs[0].sql_queries));
  }
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
