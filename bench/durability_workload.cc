// Durability crash-chaos wall: forked service incarnations are power-cut
// (`crash` fault codes — std::_Exit, no flushes, no destructors) at seeded
// WAL kill points mid-mutation-stream, then recovered in the parent. See
// storage/wal.h (fsync policies, torn tails), storage/checkpoint.h (the
// checkpoint/truncate protocol), and service/debug_service.h
// (recovery-on-construct).
//
// Per crash/recover cycle, three gates:
//
//   loss   — the recovered database must equal the state after applying
//            some prefix of the seeded mutation stream AT LEAST as long as
//            the acknowledged-durable prefix (an acked mutation may never
//            vanish; an unacked suffix legitimately may under group-commit
//            or fsync-off policies). State equality is content-based (live
//            rows), so a lost trailing auto-compaction cannot fake a loss.
//   stale  — after recovery the service's verdicts must match a serial
//            debugger whose index is REBUILT from the recovered database:
//            zero stale verdicts.
//   parity — on the first cycle of each env x policy x kill-point combo,
//            all five traversal strategies over the recovered (incremental
//            replay-patched) index classify bit-identically to the
//            rebuilt-index oracle.
//
// Cycles sweep DBLife + e-commerce, all three fsync policies, kill points
// storage.wal.append, storage.wal.fsync, and storage.wal.truncate, with
// seeded `after=` crash positions; odd cycles checkpoint mid-stream so
// crashes land on both sides of the checkpoint/truncate window (and, for
// the truncate point, inside the staged-rename swap itself). A replay-fault robustness check
// per env asserts a recovery-time fault surfaces typed instead of adopting
// a half-replayed state. Emits BENCH_durability.json.
//
//   ./durability_workload [--smoke] [--out=BENCH_durability.json]
//
// Environment knobs: KWSDBG_FSYNC_POLICY=every|group|off restricts the
// policy sweep; KWSDBG_WAL_DIR relocates the per-cycle WAL/checkpoint
// dirs (default: system temp); KWSDBG_CRASH_SEED reseeds the kill-point
// positions; KWSDBG_CRASH_CYCLES overrides cycles per combo (default 2
// smoke / 9 full — the full sweep is 108 cycles).
#include <sys/wait.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault_injector.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "datasets/dblife.h"
#include "datasets/ecommerce.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"
#include "service/debug_service.h"
#include "storage/checkpoint.h"
#include "storage/io_util.h"
#include "storage/wal.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace bench {
namespace {

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}

/// Content-independent per-catalog state (schema, lattice, queries); the
/// database itself is rebuilt fresh per cycle from the deterministic
/// generators so every incarnation starts identical.
struct MasterEnv {
  std::string name;
  bool dblife = true;
  bool smoke = true;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
  std::vector<std::string> queries;
};

struct Instance {
  std::unique_ptr<Database> db;
  std::unique_ptr<InvertedIndex> index;
};

MasterEnv BuildMaster(bool dblife, bool smoke) {
  MasterEnv master;
  master.dblife = dblife;
  master.smoke = smoke;
  if (dblife) {
    master.name = "dblife";
    DblifeConfig config = EnvDblifeConfig().Scaled(smoke ? 0.05 : 1.0);
    auto dataset = GenerateDblife(config);
    KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
    master.schema = std::move(dataset->schema);
    for (const WorkloadQuery& q : PaperWorkload()) {
      master.queries.push_back(q.text);
      if (master.queries.size() >= 2) break;
    }
  } else {
    master.name = "ecommerce";
    EcommerceConfig config;
    config.num_items = smoke ? 100 : 400;
    auto dataset = GenerateEcommerce(config);
    KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
    master.schema = std::move(dataset->schema);
    master.queries = {"saffron candle", "lavender soap"};
  }
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(master.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  master.lattice = std::move(*lattice);
  return master;
}

Instance BuildInstance(const MasterEnv& master) {
  Instance inst;
  if (master.dblife) {
    DblifeConfig config = EnvDblifeConfig().Scaled(master.smoke ? 0.05 : 1.0);
    auto dataset = GenerateDblife(config);
    KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
    inst.db = std::move(dataset->db);
  } else {
    EcommerceConfig config;
    config.num_items = master.smoke ? 100 : 400;
    auto dataset = GenerateEcommerce(config);
    KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
    inst.db = std::move(dataset->db);
  }
  inst.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*inst.db));
  return inst;
}

std::vector<std::string> SampledVocab(const InvertedIndex& index) {
  std::vector<std::string> vocab = index.Terms();
  if (vocab.size() > 32) vocab.resize(32);
  KWSDBG_CHECK(!vocab.empty());
  return vocab;
}

/// One seeded random write; the SAME (seed, evolving db state) sequence is
/// regenerated in the crashing child and in the parent's oracle, so both
/// walk identical streams. Insert-heavy, with deletes to drive compaction
/// records through the WAL and the occasional fresh word to move the index
/// dictionary fingerprint.
Mutation RandomMutation(Rng* rng, Database* db,
                        const std::vector<std::string>& vocab) {
  const std::vector<std::string> names = db->TableNames();
  const std::string& tname = names[rng->Uniform(names.size())];
  Table* t = db->FindTable(tname);
  const double roll = rng->NextDouble();
  uint64_t kind = roll < 0.5 ? 0 : (roll < 0.8 ? 2 : 1);
  if (t->live_rows() == 0) kind = 0;

  auto random_value = [&](DataType type) {
    switch (type) {
      case DataType::kInt64:
        return Value(static_cast<int64_t>(rng->Uniform(128)));
      case DataType::kDouble:
        return Value(static_cast<double>(rng->Uniform(100)) * 0.25);
      case DataType::kString: {
        std::string s = vocab[rng->Uniform(vocab.size())];
        if (rng->Bernoulli(0.3)) s += ' ' + vocab[rng->Uniform(vocab.size())];
        if (rng->Bernoulli(0.1)) {
          s += " crashword" + std::to_string(rng->Uniform(16));
        }
        return Value(s);
      }
    }
    return Value();
  };

  if (kind == 0) {
    Tuple row;
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      row.push_back(random_value(t->schema().column(c).type));
    }
    return Mutation::Insert(tname, std::move(row));
  }
  size_t row = rng->Uniform(t->num_rows());
  while (t->deleted(row)) row = (row + 1) % t->num_rows();
  if (kind == 1) return Mutation::Delete(tname, row);
  const size_t col = rng->Uniform(t->schema().num_columns());
  return Mutation::Update(tname, row, col,
                          random_value(t->schema().column(col).type));
}

/// Content fingerprint over LIVE rows only: invariant under compaction
/// (which drops tombstones but preserves live-row content and order), so a
/// crash that loses a trailing auto-compaction record — but no mutation —
/// still fingerprints equal to the oracle prefix.
uint64_t DbFingerprint(Database* db) {
  uint64_t h = SplitMix64(0x64626670ull);  // "dbfp"
  for (const std::string& name : db->TableNames()) {
    h = SplitMix64(h ^ Checksum64(name.data(), name.size()));
    Table* t = db->FindTable(name);
    for (size_t r = 0; r < t->num_rows(); ++r) {
      if (t->deleted(r)) continue;
      for (size_t c = 0; c < t->schema().num_columns(); ++c) {
        const std::string cell = t->at(r, c).ToString();
        h = SplitMix64(h ^ Checksum64(cell.data(), cell.size()));
      }
    }
  }
  return h;
}

struct CycleConfig {
  std::string dir;
  FsyncPolicy policy = FsyncPolicy::kEveryRecord;
  std::string point;        ///< Armed kill point (storage.wal.*).
  uint64_t after = 0;       ///< Hits before the crash becomes eligible.
  bool checkpoint_mid = false;
  uint64_t stream_seed = 0;
  size_t stream_len = 0;
};

ServiceOptions DurableOptions(const CycleConfig& c, size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.durability.dir = c.dir;
  options.durability.wal.fsync_policy = c.policy;
  options.durability.wal.group_commit_records = 4;
  return options;
}

/// Durably records how many stream mutations are acknowledged-durable; the
/// parent's loss gate compares against THIS, never against what the child
/// merely attempted.
void WriteAck(int fd, uint64_t acked_mutations) {
  KWSDBG_CHECK(WriteFullAt(fd, &acked_mutations, sizeof(acked_mutations), 0,
                           "ack write")
                   .ok());
  KWSDBG_CHECK(SyncFd(fd, "ack sync").ok());
}

uint64_t ReadAck(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok() || contents->size() < sizeof(uint64_t)) return 0;
  uint64_t acked = 0;
  std::memcpy(&acked, contents->data(), sizeof(acked));
  return acked;
}

/// Child body: arm the kill schedule, run a durable service over the
/// (fork-copied, pristine) instance, apply the seeded stream acking
/// durable prefixes, optionally checkpoint mid-stream. _Exit(0) when the
/// crash point lands past the stream; kCrashExitCode when the power cut
/// fires. Never returns.
[[noreturn]] void RunChild(const MasterEnv& master, Instance* inst,
                           const CycleConfig& c) {
  KWSDBG_CHECK(FaultInjector::Global()
                   .Configure(c.point + "=crash,after=" +
                              std::to_string(c.after))
                   .ok());
  auto ack_fd = OpenFd(c.dir + "/acks", O_CREAT | O_RDWR, 0644, "ack open");
  KWSDBG_CHECK(ack_fd.ok());
  DebugService service(inst->db.get(), master.lattice.get(),
                       inst->index.get(), DurableOptions(c, 1));
  KWSDBG_CHECK(service.durability_status().ok())
      << service.durability_status().ToString();
  Rng rng(c.stream_seed);
  const std::vector<std::string> vocab = SampledVocab(*inst->index);
  for (size_t i = 0; i < c.stream_len; ++i) {
    const Mutation m = RandomMutation(&rng, inst->db.get(), vocab);
    const Status st = service.ApplyMutation(m);
    KWSDBG_CHECK(st.ok()) << st.ToString();
    // Acknowledge only when the fsync frontier covers every appended
    // record (mutations AND their auto-compaction records).
    if (service.wal()->durable_seq() + 1 == service.wal()->next_seq()) {
      WriteAck(*ack_fd, i + 1);
    }
    if (c.checkpoint_mid && i == c.stream_len / 2) {
      const Status cs = service.Checkpoint();
      KWSDBG_CHECK(cs.ok()) << cs.ToString();
      WriteAck(*ack_fd, i + 1);  // The snapshot covers everything so far.
    }
  }
  std::_Exit(0);
}

/// Fingerprints of every oracle prefix state: fps[k] = state after the
/// first k mutations of the seeded stream, applied through the same
/// service write path (same auto-compaction policy) minus the WAL.
std::vector<uint64_t> OraclePrefixFingerprints(const MasterEnv& master,
                                               const CycleConfig& c) {
  Instance inst = BuildInstance(master);
  ServiceOptions options;
  options.num_workers = 1;
  DebugService service(inst.db.get(), master.lattice.get(), inst.index.get(),
                       options);
  Rng rng(c.stream_seed);
  const std::vector<std::string> vocab = SampledVocab(*inst.index);
  std::vector<uint64_t> fps;
  fps.push_back(DbFingerprint(inst.db.get()));
  for (size_t i = 0; i < c.stream_len; ++i) {
    const Mutation m = RandomMutation(&rng, inst.db.get(), vocab);
    const Status st = service.ApplyMutation(m);
    KWSDBG_CHECK(st.ok()) << st.ToString();
    fps.push_back(DbFingerprint(inst.db.get()));
  }
  return fps;
}

struct ComboTotals {
  std::string env;
  std::string policy;
  std::string point;
  size_t cycles = 0;
  size_t crashes = 0;
  size_t checkpoints = 0;
  size_t lost = 0;
  size_t stale = 0;
  size_t recovery_failures = 0;
  uint64_t replayed = 0;
};

struct ParityRow {
  std::string env;
  std::string policy;
  std::string strategy;
  bool match = true;
};

/// One crash/recover cycle. Returns the number of gate violations.
size_t RunCycle(const MasterEnv& master, const CycleConfig& c,
                bool check_parity, ComboTotals* totals,
                std::vector<ParityRow>* parity_rows) {
  std::filesystem::remove_all(c.dir);
  std::filesystem::create_directories(c.dir);
  ++totals->cycles;
  if (c.checkpoint_mid) ++totals->checkpoints;

  // The child gets a fork-time copy of this pristine instance; the
  // parent's copy stays untouched and doubles as the recovery base when no
  // checkpoint was written.
  Instance pristine = BuildInstance(master);
  const pid_t pid = fork();
  KWSDBG_CHECK(pid >= 0);
  if (pid == 0) RunChild(master, &pristine, c);
  int wstatus = 0;
  KWSDBG_CHECK(waitpid(pid, &wstatus, 0) == pid);
  KWSDBG_CHECK(WIFEXITED(wstatus)) << "child died abnormally";
  const int code = WEXITSTATUS(wstatus);
  KWSDBG_CHECK(code == 0 || code == FaultInjector::kCrashExitCode)
      << "child exit code " << code;
  const bool crashed = code == FaultInjector::kCrashExitCode;
  if (crashed) ++totals->crashes;
  const uint64_t acked = ReadAck(c.dir + "/acks");

  size_t violations = 0;

  // Recovery base: the checkpoint snapshot when one was written, else the
  // pristine catalog; the service replays the surviving WAL on construct.
  std::unique_ptr<Database> db;
  std::unique_ptr<InvertedIndex> index;
  auto restored = Database::Recover(c.dir);
  if (restored.ok()) {
    db = std::move(*restored);
    index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db));
  } else if (restored.status().code() == StatusCode::kNotFound) {
    db = std::move(pristine.db);
    index = std::move(pristine.index);
  } else {
    ++totals->recovery_failures;
    std::printf("  [GATE] %s/%s/%s: snapshot restore failed: %s\n",
                totals->env.c_str(), totals->policy.c_str(),
                totals->point.c_str(), restored.status().ToString().c_str());
    return 1;
  }
  DebugService service(db.get(), master.lattice.get(), index.get(),
                       DurableOptions(c, 2));
  if (!service.durability_status().ok()) {
    ++totals->recovery_failures;
    std::printf("  [GATE] %s/%s/%s: recovery failed: %s\n",
                totals->env.c_str(), totals->policy.c_str(),
                totals->point.c_str(),
                service.durability_status().ToString().c_str());
    return 1;
  }

  // Loss gate: recovered state == oracle prefix k for some k >= acked.
  const uint64_t fp = DbFingerprint(db.get());
  const std::vector<uint64_t> oracle = OraclePrefixFingerprints(master, c);
  bool matched = false;
  for (uint64_t k = acked; k < oracle.size(); ++k) {
    if (oracle[k] == fp) {
      matched = true;
      break;
    }
  }
  if (!matched) {
    ++totals->lost;
    ++violations;
    std::printf("  [GATE] %s/%s/%s after=%llu: recovered state matches no "
                "stream prefix >= %llu acked mutation(s)\n",
                totals->env.c_str(), totals->policy.c_str(),
                totals->point.c_str(),
                static_cast<unsigned long long>(c.after),
                static_cast<unsigned long long>(acked));
  }

  // Stale-verdict gate: recovered service vs rebuilt-index serial oracle.
  const InvertedIndex rebuilt = InvertedIndex::Build(*db);
  NonAnswerDebugger serial(db.get(), master.lattice.get(), &rebuilt);
  BatchResult batch = service.RunBatch(master.queries);
  KWSDBG_CHECK(batch.status.ok());
  totals->replayed += batch.stats.wal_replayed;
  for (size_t i = 0; i < master.queries.size(); ++i) {
    auto want = serial.Debug(master.queries[i]);
    KWSDBG_CHECK(want.ok()) << want.status().ToString();
    const QueryResult& r = batch.results[i];
    KWSDBG_CHECK(r.status.ok()) << r.status.ToString();
    if (r.report.ClassificationSignature() !=
        want->ClassificationSignature()) {
      ++totals->stale;
      ++violations;
      std::printf("  [GATE] %s/%s/%s: stale verdict for \"%s\" after "
                  "recovery\n",
                  totals->env.c_str(), totals->policy.c_str(),
                  totals->point.c_str(), master.queries[i].c_str());
    }
  }

  // Parity gate (first cycle per combo): all five strategies over the
  // recovered replay-patched index vs the rebuilt-index oracle.
  if (check_parity) {
    for (TraversalKind kind : AllTraversalKinds()) {
      DebuggerOptions options;
      options.strategy = kind;
      NonAnswerDebugger recovered_dbg(db.get(), master.lattice.get(),
                                      index.get(), options);
      NonAnswerDebugger oracle_dbg(db.get(), master.lattice.get(), &rebuilt,
                                   options);
      bool match = true;
      for (const std::string& query : master.queries) {
        auto got = recovered_dbg.Debug(query);
        auto want = oracle_dbg.Debug(query);
        KWSDBG_CHECK(got.ok()) << got.status().ToString();
        KWSDBG_CHECK(want.ok()) << want.status().ToString();
        if (got->ClassificationSignature() !=
            want->ClassificationSignature()) {
          match = false;
        }
      }
      if (!match) {
        ++violations;
        std::printf("  [GATE] %s/%s/%s: strategy %s diverged after "
                    "recovery\n",
                    totals->env.c_str(), totals->policy.c_str(),
                    totals->point.c_str(),
                    std::string(TraversalKindName(kind)).c_str());
      }
      parity_rows->push_back({totals->env, totals->policy,
                              std::string(TraversalKindName(kind)), match});
    }
  }
  return violations;
}

/// A fault during recovery replay must surface typed — the service must
/// refuse to adopt a half-replayed state — and a clean retry must succeed.
size_t RunReplayFaultCheck(const MasterEnv& master, const std::string& dir) {
  CycleConfig c;
  c.dir = dir;
  c.policy = FsyncPolicy::kEveryRecord;
  c.stream_seed = 0x5EEDFA11u;
  c.stream_len = 4;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    Instance inst = BuildInstance(master);
    DebugService service(inst.db.get(), master.lattice.get(),
                         inst.index.get(), DurableOptions(c, 1));
    KWSDBG_CHECK(service.durability_status().ok());
    Rng rng(c.stream_seed);
    const std::vector<std::string> vocab = SampledVocab(*inst.index);
    for (size_t i = 0; i < c.stream_len; ++i) {
      KWSDBG_CHECK(
          service.ApplyMutation(RandomMutation(&rng, inst.db.get(), vocab))
              .ok());
    }
  }
  size_t violations = 0;
  {
    ScopedFaultInjection faults("storage.wal.replay=unavailable,times=1");
    Instance inst = BuildInstance(master);
    DebugService service(inst.db.get(), master.lattice.get(),
                         inst.index.get(), DurableOptions(c, 1));
    if (service.durability_status().ok()) {
      ++violations;
      std::printf("  [GATE] %s: replay fault was swallowed — service came "
                  "up over a half-replayed log\n",
                  master.name.c_str());
    }
  }
  {
    Instance inst = BuildInstance(master);
    DebugService service(inst.db.get(), master.lattice.get(),
                         inst.index.get(), DurableOptions(c, 1));
    if (!service.durability_status().ok()) {
      ++violations;
      std::printf("  [GATE] %s: clean recovery retry failed: %s\n",
                  master.name.c_str(),
                  service.durability_status().ToString().c_str());
    }
  }
  std::printf("  %s replay-fault robustness: %s\n", master.name.c_str(),
              violations == 0 ? "typed failure, clean retry ok" : "FAILED");
  return violations;
}

const char* PolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every";
    case FsyncPolicy::kGroupCommit:
      return "group";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

std::vector<FsyncPolicy> PolicySweep() {
  const char* env = std::getenv("KWSDBG_FSYNC_POLICY");
  if (env != nullptr && env[0] != '\0') {
    auto parsed = ParseFsyncPolicy(env);
    KWSDBG_CHECK(parsed.ok()) << parsed.status().ToString();
    return {*parsed};
  }
  return {FsyncPolicy::kEveryRecord, FsyncPolicy::kGroupCommit,
          FsyncPolicy::kOff};
}

int Run(bool smoke, const std::string& out_path) {
  std::printf("Durability workload: crash-chaos wall, %s mode\n",
              smoke ? "smoke" : "full");
  const char* wal_dir_env = std::getenv("KWSDBG_WAL_DIR");
  std::error_code ec;
  const std::string base_dir =
      (wal_dir_env != nullptr && wal_dir_env[0] != '\0')
          ? std::string(wal_dir_env)
          : std::filesystem::temp_directory_path(ec).string() +
                "/kwsdbg_durability";
  KWSDBG_CHECK(!ec);
  const uint64_t crash_seed = EnvSizeOr("KWSDBG_CRASH_SEED", 0xC4A5D00Du);
  const size_t cycles_per_combo =
      EnvSizeOr("KWSDBG_CRASH_CYCLES", smoke ? 2 : 9);
  const size_t stream_len = smoke ? 14 : 24;
  const std::vector<FsyncPolicy> policies = PolicySweep();
  const std::vector<std::string> points = {"storage.wal.append",
                                           "storage.wal.fsync",
                                           "storage.wal.truncate"};

  size_t violations = 0;
  size_t total_cycles = 0;
  size_t total_crashes = 0;
  size_t append_crashes = 0;
  std::vector<ComboTotals> combos;
  std::vector<ParityRow> parity_rows;
  std::ostringstream robustness_json;

  for (const bool is_dblife : {true, false}) {
    const MasterEnv master = BuildMaster(is_dblife, smoke);
    std::printf("\n%s: %zu queries, stream of %zu seeded write(s) per "
                "incarnation\n",
                master.name.c_str(), master.queries.size(), stream_len);
    Rng after_rng(crash_seed ^ Checksum64(master.name.data(),
                                          master.name.size()));
    for (const FsyncPolicy policy : policies) {
      for (const std::string& point : points) {
        ComboTotals totals;
        totals.env = master.name;
        totals.policy = PolicyName(policy);
        totals.point = point;
        for (size_t cycle = 0; cycle < cycles_per_combo; ++cycle) {
          CycleConfig c;
          c.dir = base_dir + "/" + master.name + "_" + totals.policy + "_" +
                  point.substr(point.rfind('.') + 1) + "_" +
                  std::to_string(cycle);
          c.policy = policy;
          c.point = point;
          // First cycle crashes early and deterministically; later cycles
          // draw seeded positions (some land past the stream: the child
          // survives and the cycle degenerates to clean restart+replay).
          // The truncate point only has three hits — boot creation, then
          // truncate entry and pre-rename during the mid-stream checkpoint
          // — so its cycles always checkpoint and draw from that range
          // (cycle 0's after=2 lands deterministically pre-rename).
          const bool truncate_point = point == "storage.wal.truncate";
          c.after = cycle == 0 ? 2
                    : truncate_point
                        ? after_rng.Uniform(5)
                        : after_rng.Uniform(stream_len + 4);
          c.checkpoint_mid = truncate_point || cycle % 2 == 1;
          c.stream_seed = crash_seed ^ (0x9E3779B97F4A7C15ull * (cycle + 1));
          c.stream_len = stream_len;
          violations +=
              RunCycle(master, c, /*check_parity=*/cycle == 0, &totals,
                       &parity_rows);
        }
        total_cycles += totals.cycles;
        total_crashes += totals.crashes;
        if (point == "storage.wal.append") append_crashes += totals.crashes;
        std::printf("  %s/%s/%s: %zu cycle(s), %zu crash(es), %zu "
                    "checkpoint(s), %llu record(s) replayed\n",
                    totals.env.c_str(), totals.policy.c_str(),
                    totals.point.c_str(), totals.cycles, totals.crashes,
                    totals.checkpoints,
                    static_cast<unsigned long long>(totals.replayed));
        combos.push_back(std::move(totals));
      }
    }
    const size_t robustness =
        RunReplayFaultCheck(master, base_dir + "/" + master.name + "_replay");
    violations += robustness;
    if (robustness_json.tellp() > 0) robustness_json << ',';
    robustness_json << "{\"env\":\"" << master.name << "\",\"ok\":"
                    << (robustness == 0 ? "true" : "false") << "}";
  }

  // The wall is only a wall if the power cuts actually fire: the append
  // point is policy-independent, so its early-crash cycles must all kill.
  if (append_crashes == 0) {
    ++violations;
    std::printf("\n[GATE] no crash ever fired at storage.wal.append — the "
                "kill schedule is inert\n");
  }

  TablePrinter table({"env", "policy", "kill point", "cycles", "crashes",
                      "lost", "stale", "recovery failures"});
  for (const ComboTotals& t : combos) {
    table.AddRow({t.env, t.policy, t.point, std::to_string(t.cycles),
                  std::to_string(t.crashes), std::to_string(t.lost),
                  std::to_string(t.stale),
                  std::to_string(t.recovery_failures)});
  }
  std::printf("\n");
  table.Print();

  {
    std::ostringstream json;
    json << "{\"bench\":\"durability_workload\",\"smoke\":"
         << (smoke ? "true" : "false") << ",\"cycles\":" << total_cycles
         << ",\"crashes\":" << total_crashes << ",\"combos\":[";
    for (size_t i = 0; i < combos.size(); ++i) {
      const ComboTotals& t = combos[i];
      if (i > 0) json << ',';
      json << "{\"env\":\"" << t.env << "\",\"policy\":\"" << t.policy
           << "\",\"point\":\"" << t.point << "\",\"cycles\":" << t.cycles
           << ",\"crashes\":" << t.crashes
           << ",\"checkpoints\":" << t.checkpoints
           << ",\"wal_replayed\":" << t.replayed << ",\"lost\":" << t.lost
           << ",\"stale\":" << t.stale
           << ",\"recovery_failures\":" << t.recovery_failures << "}";
    }
    json << "],\"parity\":[";
    for (size_t i = 0; i < parity_rows.size(); ++i) {
      const ParityRow& row = parity_rows[i];
      if (i > 0) json << ',';
      json << "{\"env\":\"" << row.env << "\",\"policy\":\"" << row.policy
           << "\",\"strategy\":\"" << row.strategy
           << "\",\"match\":" << (row.match ? "true" : "false") << "}";
    }
    json << "],\"replay_fault\":[" << robustness_json.str() << "]"
         << ",\"violations\":" << violations << '}';
    std::ofstream f(out_path);
    if (f) {
      f << json.str() << '\n';
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }
  }

  if (violations > 0) {
    std::printf("\nDURABILITY GATE FAILED: %zu violation(s)\n", violations);
    return 1;
  }
  std::printf("\nDURABILITY GATE OK: %zu crash/recover cycle(s) (%zu power "
              "cut(s)), zero lost acknowledged mutations, zero stale "
              "verdicts, five-strategy parity after recovery\n",
              total_cycles, total_crashes);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  // The spilled pool is single-session; durability pairs with the resident
  // tier (and forked children must not share spill files with the parent).
  ::unsetenv("KWSDBG_MEMORY_BUDGET");
  bool smoke = false;
  std::string out_path = "BENCH_durability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  return kwsdbg::bench::Run(smoke, out_path);
}
