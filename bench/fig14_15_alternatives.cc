// Reproduces Figs. 14 and 15: response time (total SQL execution time) of
// our lattice approach (SBH) vs the Return-Nothing and Return-Everything
// baselines, at lattice levels 5 and 7.
//
// Measurement note: all three systems check sub-query aliveness with
// first-row-early-exit queries through the same executor, so the comparison
// isolates *how many and which* queries each approach issues — the quantity
// the paper's Sec. 3.8 comparison is about.
#include <cstdio>

#include "baselines/return_everything.h"
#include "baselines/return_nothing.h"
#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

void RunLevel(const BenchEnv& env, size_t level) {
  std::printf(
      "Fig. %s (level %zu): response time (ms of SQL execution)\n",
      level == 5 ? "14" : "15", level);
  TablePrinter table({"query", "ours(SBH)", "ReturnNothing",
                      "ReturnEverything", "ours_queries", "RN_queries",
                      "RE_queries"});
  for (const WorkloadQuery& q : PaperWorkload()) {
    auto sbh = MakeStrategy(TraversalKind::kScoreBased);
    StrategyRun ours = RunStrategyOnQuery(env, level, q.text, sbh.get());

    auto re = MakeReturnEverything();
    StrategyRun re_run = RunStrategyOnQuery(env, level, q.text, re.get());

    ReturnNothingBaseline rn(&env.db(), &env.lattice(level), &env.index());
    auto rn_result = rn.Run(q.text);
    KWSDBG_CHECK(rn_result.ok()) << rn_result.status().ToString();

    table.AddRow({q.id, Fmt(ours.sql_millis, 2),
                  Fmt(rn_result->sql_millis, 2), Fmt(re_run.sql_millis, 2),
                  std::to_string(ours.sql_queries),
                  std::to_string(rn_result->sql_queries),
                  std::to_string(re_run.sql_queries)});
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): ours wins clearly on the 3-keyword "
      "queries (Q2, Q3, Q8, Q10) and the gap widens at level 7 (84-99%% "
      "reductions on Q2/Q3). RN is also incomplete: it cannot surface "
      "free-copy sub-queries at all.\n\n");
}

void Run() {
  std::vector<size_t> levels;
  for (size_t level : PaperLevels()) {
    if (level == 5 || level == 7) levels.push_back(level);
  }
  BenchEnv env(levels);
  for (size_t level : levels) RunLevel(env, level);
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
