// Concurrency gate for the DebugService: an N-worker service run must
// produce bit-identical per-query classifications (answers, non-answers,
// MPANs, culprits) to a serial NonAnswerDebugger over the same workload —
// verdicts are ground truth, so neither worker scheduling nor shared-cache
// state may change what a query reports. Runs the gate on both DBLife and
// the e-commerce catalog, then prints service throughput/latency stats.
//
//   ./concurrent_service_workload --workers=8
//   ./concurrent_service_workload --smoke        (ctest-sized)
//
// Environment knobs: KWSDBG_SEED / KWSDBG_SCALE / KWSDBG_MAX_LEVEL as in
// bench_util.h, plus KWSDBG_WORKLOAD_SEED (query sampling, default 7).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "datasets/ecommerce.h"
#include "datasets/query_generator.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

uint64_t EnvWorkloadSeed() {
  const char* v = std::getenv("KWSDBG_WORKLOAD_SEED");
  return v == nullptr ? 7 : static_cast<uint64_t>(std::atoll(v));
}

/// Runs the parity gate on one dataset; returns the mismatch count.
size_t RunCase(const char* name, const Database* db, const Lattice* lattice,
               const InvertedIndex* index,
               const std::vector<std::string>& queries, size_t workers) {
  DebuggerOptions debugger_options;  // Defaults: SBH, session cache on.

  // Serial reference: one debugger, queries in order.
  std::vector<std::string> serial_sigs;
  serial_sigs.reserve(queries.size());
  Timer serial_timer;
  {
    NonAnswerDebugger serial(db, lattice, index, debugger_options);
    for (const std::string& q : queries) {
      auto report = serial.Debug(q);
      KWSDBG_CHECK(report.ok()) << report.status().ToString();
      serial_sigs.push_back(report->ClassificationSignature());
    }
  }
  const double serial_millis = serial_timer.ElapsedMillis();

  ServiceOptions service_options;
  service_options.num_workers = workers;
  service_options.debugger = debugger_options;
  DebugService service(db, lattice, index, service_options);
  BatchResult batch = service.RunBatch(queries);

  size_t mismatches = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult& r = batch.results[i];
    if (!r.status.ok()) {
      ++mismatches;
      std::printf("  [FAIL] %s query \"%s\": %s\n", name, queries[i].c_str(),
                  r.status.ToString().c_str());
      continue;
    }
    const std::string sig = r.report.ClassificationSignature();
    if (sig != serial_sigs[i]) {
      ++mismatches;
      std::printf("  [FAIL] %s query \"%s\": service classification differs\n"
                  "    serial:  %s\n    service: %s\n",
                  name, queries[i].c_str(), serial_sigs[i].c_str(),
                  sig.c_str());
    }
  }

  std::printf("\n%s: %zu queries, %zu workers, %zu mismatch(es)\n", name,
              queries.size(), workers, mismatches);
  std::printf("  serial: %.1f ms total; service: %s\n", serial_millis,
              batch.stats.ToString().c_str());
  std::printf("  json: %s\n", ServiceStatsToJson(batch.stats).c_str());
  return mismatches;
}

int Run(size_t workers, bool smoke) {
  const uint64_t workload_seed = EnvWorkloadSeed();
  std::printf("# workload seed: %llu (override with KWSDBG_WORKLOAD_SEED)\n",
              static_cast<unsigned long long>(workload_seed));

  size_t mismatches = 0;

  // Case 1: DBLife.
  {
    const size_t level = std::min<size_t>(smoke ? 3 : 5, EnvMaxLevel());
    BenchEnv env({level});
    QueryGeneratorConfig gconfig;
    gconfig.seed = workload_seed;
    gconfig.min_keywords = 2;
    gconfig.max_keywords = 3;
    RandomQueryGenerator generator(&env.index(), gconfig);
    const std::vector<std::string> queries =
        generator.Batch(smoke ? 6 : 24);
    mismatches += RunCase("DBLife", &env.db(), &env.lattice(level),
                          &env.index(), queries, workers);
  }

  // Case 2: e-commerce catalog (Fig. 2 schema shape).
  {
    EcommerceConfig config;
    config.seed = workload_seed;
    config.num_items = smoke ? 200 : 500;
    auto dataset = GenerateEcommerce(config);
    KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
    InvertedIndex index = InvertedIndex::Build(*dataset->db);
    LatticeConfig lconfig;
    lconfig.max_joins = 2;
    lconfig.num_keyword_copies = 2;
    auto lattice = LatticeGenerator::Generate(dataset->schema, lconfig);
    KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
    QueryGeneratorConfig gconfig;
    gconfig.seed = workload_seed + 1;
    gconfig.min_keywords = 1;
    gconfig.max_keywords = 2;
    RandomQueryGenerator generator(&index, gconfig);
    std::vector<std::string> queries = generator.Batch(smoke ? 5 : 15);
    // The paper's motivating non-answer rides along so the gate always
    // covers a dead-MTN frontier (MPANs + culprits), not just answers.
    queries.push_back("saffron candle");
    mismatches += RunCase("e-commerce", dataset->db.get(), lattice->get(),
                          &index, queries, workers);
  }

  if (mismatches > 0) {
    std::printf("\nPARITY FAILED: %zu query(ies) classified differently "
                "under the concurrent service\n", mismatches);
    return 1;
  }
  std::printf("\nPARITY OK: every service classification is bit-identical "
              "to the serial debugger\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  size_t workers = 8;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = static_cast<size_t>(std::atoll(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--workers=N] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  if (workers == 0) workers = 1;
  return kwsdbg::bench::Run(workers, smoke);
}
