#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/timer.h"

namespace kwsdbg {
namespace bench {

namespace {
double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}
size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}
}  // namespace

DblifeConfig EnvDblifeConfig() {
  DblifeConfig config;
  config.seed = EnvSize("KWSDBG_SEED", 42);
  const double scale = EnvDouble("KWSDBG_SCALE", 1.0);
  return scale == 1.0 ? config : config.Scaled(scale);
}

size_t EnvMaxLevel() { return EnvSize("KWSDBG_MAX_LEVEL", 7); }

std::vector<size_t> PaperLevels() {
  std::vector<size_t> levels;
  for (size_t level : {size_t{3}, size_t{5}, size_t{7}}) {
    if (level <= EnvMaxLevel()) levels.push_back(level);
  }
  return levels;
}

BenchEnv::BenchEnv(const std::vector<size_t>& levels) {
  DblifeConfig config = EnvDblifeConfig();
  auto ds = GenerateDblife(config);
  KWSDBG_CHECK(ds.ok()) << ds.status().ToString();
  dataset_ = std::move(*ds);
  index_ = InvertedIndex::Build(*dataset_.db);
  std::printf(
      "# dataset: synthetic DBLife, %zu tables, %zu tuples (seed %llu)\n",
      dataset_.db->num_tables(), dataset_.db->TotalTuples(),
      static_cast<unsigned long long>(config.seed));
  for (size_t level : levels) {
    LatticeConfig lconfig;
    lconfig.max_joins = level - 1;
    lconfig.copy_policy = CopyPolicy::kTextRelationsOnly;
    lconfig.num_keyword_copies = 3;  // the workload has <= 3 keywords
    Timer timer;
    auto lattice = LatticeGenerator::Generate(dataset_.schema, lconfig);
    KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
    gen_millis_[level] = timer.ElapsedMillis();
    std::printf("# lattice level %zu: %zu nodes (%.0f ms offline)\n", level,
                (*lattice)->num_nodes(), gen_millis_[level]);
    lattices_[level] = std::move(*lattice);
  }
  std::printf("\n");
}

const Lattice& BenchEnv::lattice(size_t level) const {
  auto it = lattices_.find(level);
  KWSDBG_CHECK(it != lattices_.end()) << "no lattice for level " << level;
  return *it->second;
}

double BenchEnv::lattice_gen_millis(size_t level) const {
  auto it = gen_millis_.find(level);
  return it == gen_millis_.end() ? 0.0 : it->second;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::printf("%-*s", static_cast<int>(widths[i] + 2), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << v;
  return out.str();
}

}  // namespace bench
}  // namespace kwsdbg
