// Probe engine gate: executor v2 (unordered_map RowIndex) vs. v3 (flat
// open-addressing indexes + software-prefetch batched probing) — see
// sql/flat_row_index.h and Executor::RunJoin.
//
// Two halves, both gated:
//
//   parity    — DBLife + e-commerce debugger workloads replayed under all
//               five traversal strategies with three engine variants: v2
//               (flat_index off), v3_unbatched (flat on, prefetch window
//               off), and v3 (default). The A(K)/N(K)/MPAN classification
//               signature must be bit-identical across the variants; the v3
//               runs must prove they actually probed flat indexes.
//   existence — a probe-heavy existence microworkload (does any row carry
//               this join key?) over a synthetic duplicate-heavy column:
//               millions of probes, ~half misses, per-rep timings for the
//               v2 and v3 engines interleaved. Hit counts must agree, and
//               in full mode on a release build the v3 median must be at
//               least kMinSpeedup x faster.
//
// Emits BENCH_probe_engine.json (per-variant counters, per-rep timings,
// median speedup) and exits nonzero on any violated gate.
//
//   ./probe_engine_workload [--smoke] [--out=BENCH_probe_engine.json]
//
// Environment knobs: KWSDBG_SEED / KWSDBG_SCALE / KWSDBG_MAX_LEVEL as in
// bench_util.h. The microworkload seed is fixed and printed.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datasets/ecommerce.h"
#include "datasets/toy_product_db.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"
#include "sql/flat_row_index.h"
#include "sql/row_index.h"

namespace kwsdbg {
namespace bench {
namespace {

constexpr double kMinSpeedup = 1.5;
constexpr uint64_t kMicroSeed = 0xBEEFCAFEull;

/// One dataset + lattice + keyword queries to replay.
struct ProbeEnv {
  std::string name;
  const Database* db = nullptr;
  const Lattice* lattice = nullptr;
  const InvertedIndex* index = nullptr;
  std::vector<std::string> queries;
};

enum class Variant { kV2, kV3Unbatched, kV3 };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kV2: return "v2";
    case Variant::kV3Unbatched: return "v3_unbatched";
    case Variant::kV3: return "v3";
  }
  return "?";
}

struct VariantRun {
  std::string signature;  ///< ClassificationSignature over every query.
  TraversalStats stats;
  double millis = 0;
};

VariantRun RunVariant(const ProbeEnv& env, TraversalKind kind,
                      Variant variant) {
  DebuggerOptions options;
  options.strategy = kind;
  options.verdict_cache_capacity = 0;  // measure raw probes, not the cache
  options.executor.flat_index = variant != Variant::kV2;
  options.executor.batched_probe = variant == Variant::kV3;
  NonAnswerDebugger debugger(env.db, env.lattice, env.index, options);
  VariantRun run;
  Timer timer;
  for (const std::string& query : env.queries) {
    auto report = debugger.Debug(query);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    run.signature += report->ClassificationSignature();
    run.signature += '\n';
    TraversalStats stats = report->AggregateTraversalStats();
    run.stats.sql_queries += stats.sql_queries;
    run.stats.rows_probed += stats.rows_probed;
    run.stats.index_builds += stats.index_builds;
    run.stats.flat_probes += stats.flat_probes;
    run.stats.prefetch_batches += stats.prefetch_batches;
    run.stats.index_build_millis += stats.index_build_millis;
    run.stats.arena_bytes += stats.arena_bytes;
  }
  run.millis = timer.ElapsedMillis();
  return run;
}

struct ParityRow {
  std::string env;
  std::string strategy;
  std::string variant;
  TraversalStats stats;
  double millis = 0;
  bool signature_match = false;

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\"env\":\"" << env << "\",\"strategy\":\"" << strategy
        << "\",\"variant\":\"" << variant
        << "\",\"sql_queries\":" << stats.sql_queries
        << ",\"rows_probed\":" << stats.rows_probed
        << ",\"flat_probes\":" << stats.flat_probes
        << ",\"prefetch_batches\":" << stats.prefetch_batches
        << ",\"index_builds\":" << stats.index_builds
        << ",\"index_build_millis\":" << stats.index_build_millis
        << ",\"arena_bytes\":" << stats.arena_bytes
        << ",\"millis\":" << millis
        << ",\"signature_match\":" << (signature_match ? "true" : "false")
        << "}";
    return out.str();
  }
};

/// Runs the three variants over one env; appends rows, returns violations.
size_t RunEnvParity(const ProbeEnv& env, TablePrinter* table,
                    std::vector<ParityRow>* rows, size_t* env_batches) {
  size_t violations = 0;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++violations;
      std::printf("  [GATE] %s: %s\n", env.name.c_str(), what.c_str());
    }
  };
  const TraversalKind kinds[] = {
      TraversalKind::kBottomUp, TraversalKind::kTopDown,
      TraversalKind::kBottomUpWithReuse, TraversalKind::kTopDownWithReuse,
      TraversalKind::kScoreBased};
  for (TraversalKind kind : kinds) {
    const VariantRun v2 = RunVariant(env, kind, Variant::kV2);
    const Variant rest[] = {Variant::kV3Unbatched, Variant::kV3};
    VariantRun runs[] = {v2, RunVariant(env, kind, rest[0]),
                         RunVariant(env, kind, rest[1])};
    const Variant variants[] = {Variant::kV2, rest[0], rest[1]};
    for (size_t i = 0; i < 3; ++i) {
      const VariantRun& run = runs[i];
      const bool match = run.signature == v2.signature;
      gate(match, std::string(TraversalKindName(kind)) + "/" +
                      VariantName(variants[i]) +
                      " classifies the workload differently than v2");
      if (variants[i] != Variant::kV2) {
        gate(run.stats.flat_probes > 0,
             std::string(TraversalKindName(kind)) + "/" +
                 VariantName(variants[i]) + " never probed a flat index");
      }
      if (variants[i] == Variant::kV3) {
        *env_batches += run.stats.prefetch_batches;
      }
      table->AddRow({env.name, std::string(TraversalKindName(kind)),
                     VariantName(variants[i]),
                     std::to_string(run.stats.sql_queries),
                     std::to_string(run.stats.rows_probed),
                     std::to_string(run.stats.flat_probes),
                     std::to_string(run.stats.prefetch_batches),
                     std::to_string(run.stats.arena_bytes), Fmt(run.millis)});
      rows->push_back({env.name, std::string(TraversalKindName(kind)),
                       VariantName(variants[i]), run.stats, run.millis,
                       match});
    }
  }
  return violations;
}

/// Probe-heavy existence microworkload: one duplicate-heavy join column,
/// `num_probes` keys (~half misses), counting keys with at least one row.
struct ExistenceResult {
  size_t rows = 0;
  size_t probes = 0;
  size_t reps = 0;
  size_t hits = 0;
  std::vector<double> v2_millis;
  std::vector<double> v3_millis;
  double v2_median = 0;
  double v3_median = 0;
  double speedup = 0;
  size_t violations = 0;
};

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

ExistenceResult RunExistenceWorkload(size_t num_rows, size_t num_probes,
                                     size_t reps) {
  ExistenceResult r;
  r.rows = num_rows;
  r.probes = num_probes;
  r.reps = reps;

  Rng rng(kMicroSeed);
  Schema schema({{"fk", DataType::kInt64}});
  Table table("probe_side", std::move(schema));
  for (size_t i = 0; i < num_rows; ++i) {
    table.AppendRowUnchecked(
        {Value(static_cast<int64_t>(rng.Uniform(num_rows)))});
  }
  std::vector<Value> probes;
  probes.reserve(num_probes);
  for (size_t i = 0; i < num_probes; ++i) {
    // Keys in [0, 2 * num_rows): roughly half probe for absent keys, the
    // miss-heavy shape of dead-network existence checks.
    probes.emplace_back(static_cast<int64_t>(rng.Uniform(2 * num_rows)));
  }

  const RowIndex legacy = RowIndex::Build(table, 0);
  Timer build_timer;
  const FlatRowIndex flat = FlatRowIndex::Build(table, 0);
  std::printf("  flat build: %.2f ms, %zu key(s), arena %zu bytes, "
              "buckets %zu bytes\n",
              build_timer.ElapsedMillis(), flat.num_keys(),
              flat.stats().arena_bytes, flat.stats().bucket_bytes);

  auto run_v2 = [&]() {
    size_t hits = 0;
    for (const Value& v : probes) {
      if (!legacy.Lookup(v).empty()) ++hits;
    }
    return hits;
  };
  // Mirrors Executor::RunJoin's batched pipeline: hash a window of probe
  // keys, prefetch their buckets, drain the window in order.
  constexpr size_t kWindow = 16;
  auto run_v3 = [&]() {
    size_t hits = 0;
    uint64_t win_hash[kWindow];
    for (size_t i = 0; i < probes.size(); i += kWindow) {
      const size_t w = std::min(kWindow, probes.size() - i);
      for (size_t j = 0; j < w; ++j) {
        win_hash[j] = probes[i + j].Hash64();
        flat.PrefetchBucket(win_hash[j]);
      }
      for (size_t j = 0; j < w; ++j) {
        if (!flat.LookupHashed(win_hash[j], probes[i + j]).empty()) ++hits;
      }
    }
    return hits;
  };

  // One untimed warmup of each engine, then interleaved timed reps so
  // neither side benefits from running last with a hot cache.
  const size_t expect_hits = run_v2();
  r.hits = expect_hits;
  if (run_v3() != expect_hits) ++r.violations;
  for (size_t rep = 0; rep < reps; ++rep) {
    Timer t2;
    const size_t h2 = run_v2();
    r.v2_millis.push_back(t2.ElapsedMillis());
    Timer t3;
    const size_t h3 = run_v3();
    r.v3_millis.push_back(t3.ElapsedMillis());
    if (h2 != expect_hits || h3 != expect_hits) {
      ++r.violations;
      std::printf("  [GATE] existence rep %zu: hit counts diverged "
                  "(v2=%zu v3=%zu expect=%zu)\n",
                  rep, h2, h3, expect_hits);
    }
  }
  r.v2_median = Median(r.v2_millis);
  r.v3_median = Median(r.v3_millis);
  r.speedup = r.v3_median > 0 ? r.v2_median / r.v3_median : 0;
  return r;
}

int Run(bool smoke, const std::string& out_path) {
#ifdef NDEBUG
  const bool release = true;
#else
  const bool release = false;
#endif
  std::printf("Probe engine workload: v2 (unordered_map) vs v3 (flat + "
              "prefetch), %s build\n",
              release ? "release" : "debug");

  size_t violations = 0;
  std::vector<ParityRow> parity_rows;
  size_t prefetch_batches = 0;
  TablePrinter table({"env", "strategy", "variant", "SQL", "rows probed",
                      "flat probes", "batches", "arena B", "ms"});

  LatticeConfig small_lattice;
  small_lattice.max_joins = 2;
  small_lattice.num_keyword_copies = 2;

  // Parity half. Each block owns its dataset; rows/violations accumulate.
  if (smoke) {
    auto toy = BuildToyProductDatabase();
    KWSDBG_CHECK(toy.ok()) << toy.status().ToString();
    auto lattice = LatticeGenerator::Generate(toy->schema, small_lattice);
    KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
    InvertedIndex index = InvertedIndex::Build(*toy->db);
    ProbeEnv env;
    env.name = "toy";
    env.db = toy->db.get();
    env.lattice = lattice->get();
    env.index = &index;
    env.queries = {"saffron candle", "scented candle", "red candle"};
    violations += RunEnvParity(env, &table, &parity_rows, &prefetch_batches);
  } else {
    const size_t level = std::min<size_t>(5, EnvMaxLevel());
    BenchEnv dblife({level});
    ProbeEnv paper;
    paper.name = "dblife L" + std::to_string(level);
    paper.db = &dblife.db();
    paper.lattice = &dblife.lattice(level);
    paper.index = &dblife.index();
    for (const WorkloadQuery& q : PaperWorkload()) {
      paper.queries.push_back(q.text);
    }
    violations += RunEnvParity(paper, &table, &parity_rows,
                               &prefetch_batches);
  }
  {
    EcommerceConfig shop_config;
    shop_config.num_items = smoke ? 120 : 500;
    auto shop = GenerateEcommerce(shop_config);
    KWSDBG_CHECK(shop.ok()) << shop.status().ToString();
    auto shop_lattice = LatticeGenerator::Generate(shop->schema,
                                                   small_lattice);
    KWSDBG_CHECK(shop_lattice.ok()) << shop_lattice.status().ToString();
    InvertedIndex shop_index = InvertedIndex::Build(*shop->db);
    ProbeEnv ecommerce;
    ecommerce.name = "ecommerce";
    ecommerce.db = shop->db.get();
    ecommerce.lattice = shop_lattice->get();
    ecommerce.index = &shop_index;
    ecommerce.queries = {"saffron candle", "lavender soap"};
    if (!smoke) {
      ecommerce.queries.push_back("azure diffuser");
      ecommerce.queries.push_back("handmade crimson candle");
    }
    violations += RunEnvParity(ecommerce, &table, &parity_rows,
                               &prefetch_batches);
  }
  table.Print();
  if (!smoke && prefetch_batches == 0) {
    ++violations;
    std::printf("[GATE] batched probe pipeline never issued a prefetch "
                "window on the full workload\n");
  }

  // Existence half.
  std::printf("\nExistence microworkload (seed %#llx):\n",
              static_cast<unsigned long long>(kMicroSeed));
  const ExistenceResult ex =
      smoke ? RunExistenceWorkload(1u << 14, 1u << 13, 3)
            : RunExistenceWorkload(1u << 21, 1u << 20, 7);
  violations += ex.violations;
  std::printf("  %zu rows, %zu probes, %zu rep(s): v2 median %.2f ms, "
              "v3 median %.2f ms, speedup %.2fx\n",
              ex.rows, ex.probes, ex.reps, ex.v2_median, ex.v3_median,
              ex.speedup);
  const bool speedup_gated = !smoke && release;
  if (speedup_gated && ex.speedup < kMinSpeedup) {
    ++violations;
    std::printf("[GATE] median speedup %.2fx below the %.1fx floor\n",
                ex.speedup, kMinSpeedup);
  }

  // Artifact.
  {
    std::ostringstream json;
    json << "{\"bench\":\"probe_engine_workload\",\"smoke\":"
         << (smoke ? "true" : "false")
         << ",\"release\":" << (release ? "true" : "false") << ",\"parity\":[";
    for (size_t i = 0; i < parity_rows.size(); ++i) {
      if (i > 0) json << ',';
      json << parity_rows[i].ToJson();
    }
    json << "],\"existence\":{\"rows\":" << ex.rows
         << ",\"probes\":" << ex.probes << ",\"reps\":" << ex.reps
         << ",\"hits\":" << ex.hits << ",\"v2_millis\":[";
    for (size_t i = 0; i < ex.v2_millis.size(); ++i) {
      if (i > 0) json << ',';
      json << ex.v2_millis[i];
    }
    json << "],\"v3_millis\":[";
    for (size_t i = 0; i < ex.v3_millis.size(); ++i) {
      if (i > 0) json << ',';
      json << ex.v3_millis[i];
    }
    json << "],\"v2_median_millis\":" << ex.v2_median
         << ",\"v3_median_millis\":" << ex.v3_median
         << ",\"speedup\":" << ex.speedup
         << ",\"min_speedup\":" << kMinSpeedup
         << ",\"speedup_gated\":" << (speedup_gated ? "true" : "false")
         << "},\"violations\":" << violations << '}';
    std::ofstream f(out_path);
    if (f) {
      f << json.str() << '\n';
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }
  }

  if (violations > 0) {
    std::printf("\nPROBE ENGINE GATE FAILED: %zu violation(s)\n", violations);
    return 1;
  }
  std::printf("\nPROBE ENGINE GATE OK: classifications bit-identical across "
              "v2 / v3_unbatched / v3%s\n",
              speedup_gated ? ", speedup floor met" : "");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_probe_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  return kwsdbg::bench::Run(smoke, out_path);
}
