// Live-data gate: incremental index maintenance + relation-scoped cache
// invalidation vs. the rebuild-the-world baseline — see
// service/live_mutator.h, text/inverted_index.h (ApplyRow*), and
// traversal/verdict_cache.h (relation-set fingerprints).
//
// Three gates over two catalogs (scaled DBLife + e-commerce):
//
//   parity — an interleaved mutation stream (inserts / deletes / updates,
//            auto-compaction included) runs against long-lived debuggers
//            whose index is patched incrementally; at every checkpoint all
//            five traversal strategies must classify the workload exactly
//            like a fresh debugger whose index is REBUILT from scratch.
//   warm   — after warming a mutable DebugService, one write to a single
//            table must keep the verdict tier at least 50% warm on the
//            rerun (relation-scoped eviction, not epoch-bump-everything).
//   chaos  — seeded random writes (with `storage.mutation.apply` faults
//            armed part of the time) interleave with service batches; zero
//            stale verdicts against the rebuild oracle.
//
// Emits BENCH_live_data.json.
//
//   ./live_data_workload [--smoke] [--out=BENCH_live_data.json]
//
// Environment knobs: KWSDBG_SEED / KWSDBG_SCALE as in bench_util.h;
// KWSDBG_MUTATION_RATE writes per chaos query (default 3).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/rng.h"
#include "datasets/dblife.h"
#include "datasets/ecommerce.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace kwsdbg {
namespace bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : static_cast<size_t>(std::atoll(v));
}

struct LiveEnv {
  std::string name;
  std::unique_ptr<Database> db;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
  std::unique_ptr<InvertedIndex> index;
  std::vector<std::string> queries;
};

LiveEnv BuildDblifeEnv(bool smoke) {
  DblifeConfig config = EnvDblifeConfig().Scaled(smoke ? 0.05 : 1.0);
  auto dataset = GenerateDblife(config);
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  LiveEnv env;
  env.name = "dblife";
  env.db = std::move(dataset->db);
  env.schema = std::move(dataset->schema);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(env.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  env.lattice = std::move(*lattice);
  env.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*env.db));
  for (const WorkloadQuery& q : PaperWorkload()) {
    env.queries.push_back(q.text);
    if (env.queries.size() >= (smoke ? 3u : 6u)) break;
  }
  return env;
}

LiveEnv BuildEcommerceEnv(bool smoke) {
  EcommerceConfig config;
  config.num_items = smoke ? 100 : 400;
  auto dataset = GenerateEcommerce(config);
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  LiveEnv env;
  env.name = "ecommerce";
  env.db = std::move(dataset->db);
  env.schema = std::move(dataset->schema);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(env.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  env.lattice = std::move(*lattice);
  env.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*env.db));
  env.queries = {"saffron candle", "lavender soap"};
  if (!smoke) env.queries.push_back("handmade crimson candle");
  return env;
}

/// One seeded random write. Insert-heavy mix so tables grow over the
/// stream; strings draw from sampled index vocabulary plus the occasional
/// fresh word (dictionary refinalize on the resident index).
Mutation RandomMutation(Rng* rng, Database* db,
                        const std::vector<std::string>& vocab) {
  const std::vector<std::string> names = db->TableNames();
  const std::string& tname = names[rng->Uniform(names.size())];
  Table* t = db->FindTable(tname);
  const double roll = rng->NextDouble();
  uint64_t kind = roll < 0.5 ? 0 : (roll < 0.8 ? 2 : 1);
  if (t->live_rows() == 0) kind = 0;

  auto random_value = [&](DataType type) {
    switch (type) {
      case DataType::kInt64:
        return Value(static_cast<int64_t>(rng->Uniform(128)));
      case DataType::kDouble:
        return Value(static_cast<double>(rng->Uniform(100)) * 0.25);
      case DataType::kString: {
        std::string s = vocab[rng->Uniform(vocab.size())];
        if (rng->Bernoulli(0.3)) s += ' ' + vocab[rng->Uniform(vocab.size())];
        if (rng->Bernoulli(0.05)) {
          s += " liveword" + std::to_string(rng->Uniform(16));
        }
        return Value(s);
      }
    }
    return Value();
  };

  if (kind == 0) {
    Tuple row;
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      row.push_back(random_value(t->schema().column(c).type));
    }
    return Mutation::Insert(tname, std::move(row));
  }
  size_t row = rng->Uniform(t->num_rows());
  while (t->deleted(row)) row = (row + 1) % t->num_rows();
  if (kind == 1) return Mutation::Delete(tname, row);
  const size_t col = rng->Uniform(t->schema().num_columns());
  return Mutation::Update(tname, row, col,
                          random_value(t->schema().column(col).type));
}

std::vector<std::string> SampledVocab(const InvertedIndex& index) {
  std::vector<std::string> vocab = index.Terms();
  if (vocab.size() > 32) vocab.resize(32);
  KWSDBG_CHECK(!vocab.empty());
  return vocab;
}

/// Signatures of the whole workload under one strategy with a debugger
/// whose index is rebuilt from the database's current contents.
std::string RebuildReference(const LiveEnv& env, TraversalKind kind) {
  const InvertedIndex rebuilt = InvertedIndex::Build(*env.db);
  DebuggerOptions options;
  options.strategy = kind;
  NonAnswerDebugger debugger(env.db.get(), env.lattice.get(), &rebuilt,
                             options);
  std::string sig;
  for (const std::string& query : env.queries) {
    auto report = debugger.Debug(query);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    sig += report->ClassificationSignature();
    sig += '\n';
  }
  return sig;
}

struct ParityRow {
  std::string env;
  std::string strategy;
  size_t checkpoints = 0;
  size_t mutations = 0;
  size_t compactions = 0;
  bool match = true;
};

/// Gate (a): interleaved mutation stream vs rebuild-the-world, all five
/// strategies through LONG-LIVED debuggers (their session caches must
/// invalidate per-table, never serve a stale verdict, and survive
/// auto-compaction row-id remaps).
size_t RunParityGate(LiveEnv* env, bool smoke, std::vector<ParityRow>* rows) {
  RelationFences fences(env->db->num_tables());
  LiveMutator mutator(env->db.get(), env->index.get(), &fences);
  Rng rng(0x11FEDA7Au);
  const std::vector<std::string> vocab = SampledVocab(*env->index);

  struct StrategyState {
    TraversalKind kind;
    std::unique_ptr<NonAnswerDebugger> debugger;
    bool match = true;
  };
  std::vector<StrategyState> strategies;
  for (TraversalKind kind : AllTraversalKinds()) {
    DebuggerOptions options;
    options.strategy = kind;
    strategies.push_back(
        {kind,
         std::make_unique<NonAnswerDebugger>(env->db.get(),
                                             env->lattice.get(),
                                             env->index.get(), options),
         true});
  }

  const size_t checkpoints = smoke ? 4 : 10;
  const size_t writes_per_checkpoint = smoke ? 4 : 8;
  size_t mutations = 0;
  size_t violations = 0;
  for (size_t cp = 0; cp < checkpoints; ++cp) {
    for (size_t m = 0; m < writes_per_checkpoint; ++m) {
      const Mutation mutation = RandomMutation(&rng, env->db.get(), vocab);
      Status st = mutator.Apply(mutation);
      if (st.ok()) ++mutations;
    }
    for (StrategyState& s : strategies) {
      const std::string want = RebuildReference(*env, s.kind);
      std::string got;
      for (const std::string& query : env->queries) {
        auto report = s.debugger->Debug(query);
        KWSDBG_CHECK(report.ok()) << report.status().ToString();
        got += report->ClassificationSignature();
        got += '\n';
      }
      if (got != want) {
        s.match = false;
        ++violations;
        std::printf("  [GATE] %s/%s: incremental run diverged from rebuild "
                    "at checkpoint %zu\n",
                    env->name.c_str(),
                    std::string(TraversalKindName(s.kind)).c_str(), cp);
      }
    }
  }
  for (const StrategyState& s : strategies) {
    rows->push_back({env->name, std::string(TraversalKindName(s.kind)),
                     checkpoints, mutations,
                     static_cast<size_t>(mutator.stats().compactions.load()),
                     s.match});
  }
  std::printf("  %s parity: %zu checkpoint(s), %zu mutation(s), "
              "%llu compaction(s)\n",
              env->name.c_str(), checkpoints, mutations,
              static_cast<unsigned long long>(
                  mutator.stats().compactions.load()));
  return violations;
}

/// The table bound by the fewest workload keywords — a write there should
/// leave most of the verdict tier warm.
std::string ColdestTable(const LiveEnv& env) {
  std::string best;
  size_t best_count = static_cast<size_t>(-1);
  for (const std::string& name : env.db->TableNames()) {
    size_t count = 0;
    for (const std::string& query : env.queries) {
      for (const std::string& term : TokenizeUnique(query)) {
        count += env.index->RowFrequency(term, name);
      }
    }
    if (count < best_count) {
      best_count = count;
      best = name;
    }
  }
  return best;
}

struct WarmResult {
  std::string victim;
  double hit_rate_warm = 0;
  double hit_rate_after = 0;
  size_t partial_evictions = 0;
  std::string stats_json;
};

/// Gate (b): a single-table write must keep the service's verdict tier at
/// least 50% warm on the rerun.
size_t RunWarmGate(LiveEnv* env, WarmResult* out) {
  ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  DebugService service(env->db.get(), env->lattice.get(), env->index.get(),
                       options);
  KWSDBG_CHECK(service.mutator() != nullptr);

  auto hit_rate = [](const ServiceStats& stats) {
    const size_t total = stats.cache_hits + stats.cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(stats.cache_hits) / total;
  };

  BatchResult cold = service.RunBatch(env->queries);
  KWSDBG_CHECK(cold.status.ok());
  BatchResult warm = service.RunBatch(env->queries);
  KWSDBG_CHECK(warm.status.ok());
  out->hit_rate_warm = hit_rate(warm.stats);

  out->victim = ColdestTable(*env);
  Table* victim = env->db->FindTable(out->victim);
  KWSDBG_CHECK(victim != nullptr);
  Tuple row;
  for (size_t c = 0; c < victim->schema().num_columns(); ++c) {
    switch (victim->schema().column(c).type) {
      case DataType::kInt64:
        row.push_back(Value(int64_t{424242}));
        break;
      case DataType::kDouble:
        row.push_back(Value(42.0));
        break;
      case DataType::kString:
        row.push_back(Value(std::string("livegatewrite")));
        break;
    }
  }
  Status st = service.ApplyMutation(Mutation::Insert(out->victim, row));
  KWSDBG_CHECK(st.ok()) << st.ToString();

  BatchResult after = service.RunBatch(env->queries);
  KWSDBG_CHECK(after.status.ok());
  out->hit_rate_after = hit_rate(after.stats);
  out->partial_evictions = after.stats.partial_evictions;
  out->stats_json = ServiceStatsToJson(after.stats);

  size_t violations = 0;
  if (out->hit_rate_after < 0.5) {
    ++violations;
    std::printf("  [GATE] %s: warm hit rate after single-table write %.1f%% "
                "< 50%% (write to %s)\n",
                env->name.c_str(), out->hit_rate_after * 100,
                out->victim.c_str());
  }
  if (after.stats.mutations_applied == 0) {
    ++violations;
    std::printf("  [GATE] %s: mutation counters missing from service stats\n",
                env->name.c_str());
  }
  std::printf("  %s warm: hit rate %.1f%% warm, %.1f%% after a write to %s "
              "(%zu verdict(s) evicted)\n",
              env->name.c_str(), out->hit_rate_warm * 100,
              out->hit_rate_after * 100, out->victim.c_str(),
              out->partial_evictions);
  return violations;
}

struct ChaosResult {
  size_t queries = 0;
  size_t mutations_applied = 0;
  size_t faults_fired = 0;
  size_t stale_verdicts = 0;
};

/// Gate (c): seeded read/write chaos with the mutation fault point armed;
/// every service answer must match the rebuild oracle — zero stale verdicts.
size_t RunChaosGate(LiveEnv* env, bool smoke, ChaosResult* out) {
  const size_t mutation_rate = EnvSize("KWSDBG_MUTATION_RATE", 3);
  ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  DebugService service(env->db.get(), env->lattice.get(), env->index.get(),
                       options);
  Rng rng(0xC4A05BADu);
  const std::vector<std::string> vocab = SampledVocab(*env->index);
  ScopedFaultInjection faults(
      "storage.mutation.apply=unavailable,p=0.2,seed=99");

  const size_t rounds = smoke ? 3 : 8;
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t m = 0; m < mutation_rate; ++m) {
      const Mutation mutation = RandomMutation(&rng, env->db.get(), vocab);
      if (service.ApplyMutation(mutation).ok()) ++out->mutations_applied;
    }
    for (const std::string& query : env->queries) {
      std::string want;
      {
        const InvertedIndex rebuilt = InvertedIndex::Build(*env->db);
        NonAnswerDebugger serial(env->db.get(), env->lattice.get(),
                                 &rebuilt);
        auto report = serial.Debug(query);
        KWSDBG_CHECK(report.ok()) << report.status().ToString();
        want = report->ClassificationSignature();
      }
      BatchResult batch = service.RunBatch({query});
      KWSDBG_CHECK(batch.status.ok());
      ++out->queries;
      const QueryResult& r = batch.results.front();
      KWSDBG_CHECK(r.status.ok()) << r.status.ToString();
      if (r.report.ClassificationSignature() != want) ++out->stale_verdicts;
    }
  }
  out->faults_fired = FaultInjector::Global()
                          .StatsFor("storage.mutation.apply")
                          .fires;

  size_t violations = 0;
  if (out->stale_verdicts > 0) {
    ++violations;
    std::printf("  [GATE] %s: %zu stale verdict(s) under chaos writes\n",
                env->name.c_str(), out->stale_verdicts);
  }
  if (out->mutations_applied == 0) {
    ++violations;
    std::printf("  [GATE] %s: chaos applied no mutation at all\n",
                env->name.c_str());
  }
  std::printf("  %s chaos: %zu query(ies), %zu write(s) applied, %zu fault "
              "fire(s), %zu stale verdict(s)\n",
              env->name.c_str(), out->queries, out->mutations_applied,
              out->faults_fired, out->stale_verdicts);
  return violations;
}

int Run(bool smoke, const std::string& out_path) {
  std::printf("Live-data workload: incremental maintenance vs rebuild, "
              "%s mode\n",
              smoke ? "smoke" : "full");

  size_t violations = 0;
  std::vector<ParityRow> parity_rows;
  std::ostringstream env_jsons;
  bool first_env = true;

  for (const bool is_dblife : {true, false}) {
    // Fresh instances per gate: each gate owns its mutation stream.
    LiveEnv parity_env =
        is_dblife ? BuildDblifeEnv(smoke) : BuildEcommerceEnv(smoke);
    std::printf("\n%s: %zu tuple(s), %zu queries\n", parity_env.name.c_str(),
                parity_env.db->TotalTuples(), parity_env.queries.size());
    violations += RunParityGate(&parity_env, smoke, &parity_rows);

    LiveEnv warm_env =
        is_dblife ? BuildDblifeEnv(smoke) : BuildEcommerceEnv(smoke);
    WarmResult warm;
    violations += RunWarmGate(&warm_env, &warm);

    LiveEnv chaos_env =
        is_dblife ? BuildDblifeEnv(smoke) : BuildEcommerceEnv(smoke);
    ChaosResult chaos;
    violations += RunChaosGate(&chaos_env, smoke, &chaos);

    if (!first_env) env_jsons << ',';
    first_env = false;
    env_jsons << "{\"env\":\"" << parity_env.name << "\""
              << ",\"warm\":{\"victim\":\"" << warm.victim << "\""
              << ",\"hit_rate_warm\":" << warm.hit_rate_warm
              << ",\"hit_rate_after_write\":" << warm.hit_rate_after
              << ",\"partial_evictions\":" << warm.partial_evictions
              << ",\"service_stats\":" << warm.stats_json << "}"
              << ",\"chaos\":{\"queries\":" << chaos.queries
              << ",\"mutations_applied\":" << chaos.mutations_applied
              << ",\"faults_fired\":" << chaos.faults_fired
              << ",\"stale_verdicts\":" << chaos.stale_verdicts << "}}";
  }

  TablePrinter table({"env", "strategy", "checkpoints", "mutations",
                      "compactions", "parity"});
  for (const ParityRow& row : parity_rows) {
    table.AddRow({row.env, row.strategy, std::to_string(row.checkpoints),
                  std::to_string(row.mutations),
                  std::to_string(row.compactions),
                  row.match ? "ok" : "DIVERGED"});
  }
  std::printf("\n");
  table.Print();

  {
    std::ostringstream json;
    json << "{\"bench\":\"live_data_workload\",\"smoke\":"
         << (smoke ? "true" : "false") << ",\"parity\":[";
    for (size_t i = 0; i < parity_rows.size(); ++i) {
      const ParityRow& row = parity_rows[i];
      if (i > 0) json << ',';
      json << "{\"env\":\"" << row.env << "\",\"strategy\":\""
           << row.strategy << "\",\"checkpoints\":" << row.checkpoints
           << ",\"mutations\":" << row.mutations
           << ",\"compactions\":" << row.compactions
           << ",\"match\":" << (row.match ? "true" : "false") << "}";
    }
    json << "],\"envs\":[" << env_jsons.str() << "]"
         << ",\"violations\":" << violations << '}';
    std::ofstream f(out_path);
    if (f) {
      f << json.str() << '\n';
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }
  }

  if (violations > 0) {
    std::printf("\nLIVE DATA GATE FAILED: %zu violation(s)\n", violations);
    return 1;
  }
  std::printf("\nLIVE DATA GATE OK: incremental maintenance matches rebuild "
              "under all five strategies, one write keeps the tier warm, "
              "zero stale verdicts under chaos\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  // A global memory budget would spill the catalogs at load; live writes
  // pair with the resident tier (the spilled pool is single-session).
  ::unsetenv("KWSDBG_MEMORY_BUDGET");
  bool smoke = false;
  std::string out_path = "BENCH_live_data.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  return kwsdbg::bench::Run(smoke, out_path);
}
