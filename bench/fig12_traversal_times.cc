// Reproduces Fig. 12: the time spent executing SQL queries per traversal
// strategy per workload query at lattice level 5.
#include <cstdio>

#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

void Run() {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  std::printf(
      "Fig. 12 (level %zu): SQL execution time (ms) per traversal strategy\n",
      level);
  TablePrinter table({"query", "BU", "BUWR", "TD", "TDWR", "SBH"});
  for (const WorkloadQuery& q : PaperWorkload()) {
    std::vector<std::string> row = {q.id};
    for (TraversalKind kind :
         {TraversalKind::kBottomUp, TraversalKind::kBottomUpWithReuse,
          TraversalKind::kTopDown, TraversalKind::kTopDownWithReuse,
          TraversalKind::kScoreBased}) {
      auto strategy = MakeStrategy(kind);
      StrategyRun run = RunStrategyOnQuery(env, level, q.text, strategy.get());
      row.push_back(Fmt(run.sql_millis, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): reuse variants beat their plain "
      "counterparts; times track the query counts of Fig. 11 weighted by "
      "per-query cost.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
