// Reproduces Fig. 12: the time spent executing SQL queries per traversal
// strategy per workload query at lattice level 5.
//
//   ./fig12_traversal_times [--out=BENCH_traversal.json]
//
// Besides the figure-shaped table, every (query, strategy) run is written
// as a machine-readable artifact (same schema family as
// BENCH_resilience.json / BENCH_executor.json).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

struct Fig12Row {
  std::string query;
  std::string strategy;
  StrategyRun run;

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\"query\":\"" << query << "\",\"strategy\":\"" << strategy
        << "\",\"sql_queries\":" << run.sql_queries
        << ",\"sql_millis\":" << run.sql_millis
        << ",\"total_millis\":" << run.total_millis
        << ",\"mtns\":" << run.mtns << ",\"dead_mtns\":" << run.dead_mtns
        << ",\"mpans\":" << run.mpans << "}";
    return out.str();
  }
};

void Run(const std::string& out_path) {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  std::printf(
      "Fig. 12 (level %zu): SQL execution time (ms) per traversal strategy\n",
      level);
  TablePrinter table({"query", "BU", "BUWR", "TD", "TDWR", "SBH"});
  std::vector<Fig12Row> rows;
  for (const WorkloadQuery& q : PaperWorkload()) {
    std::vector<std::string> row = {q.id};
    for (TraversalKind kind :
         {TraversalKind::kBottomUp, TraversalKind::kBottomUpWithReuse,
          TraversalKind::kTopDown, TraversalKind::kTopDownWithReuse,
          TraversalKind::kScoreBased}) {
      auto strategy = MakeStrategy(kind);
      StrategyRun run = RunStrategyOnQuery(env, level, q.text, strategy.get());
      row.push_back(Fmt(run.sql_millis, 2));
      rows.push_back({q.id, std::string(strategy->name()), run});
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  {
    std::ostringstream json;
    json << "{\"bench\":\"fig12_traversal_times\",\"level\":" << level
         << ",\"runs\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) json << ',';
      json << rows[i].ToJson();
    }
    json << "]}";
    std::ofstream f(out_path);
    if (f) {
      f << json.str() << '\n';
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }
  }
  std::printf(
      "\nexpected shape (paper): reuse variants beat their plain "
      "counterparts; times track the query counts of Fig. 11 weighted by "
      "per-query cost.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  std::string out_path = "BENCH_traversal.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  kwsdbg::bench::Run(out_path);
  return 0;
}
