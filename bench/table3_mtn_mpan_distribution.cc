// Reproduces Table 3: the distribution of MTNs and MPANs at lattice levels
// 3, 5, and 7 for the ten workload queries.
#include <cstdio>

#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

struct Counts {
  size_t mtns = 0;
  size_t mpans = 0;
};

Counts CountAtLevel(const BenchEnv& env, size_t level,
                    const std::string& query) {
  Counts out;
  auto sbh = MakeStrategy(TraversalKind::kScoreBased);
  StrategyRun run = RunStrategyOnQuery(env, level, query, sbh.get());
  out.mtns = run.mtns;
  out.mpans = run.mpans;
  return out;
}

void Run() {
  const std::vector<size_t> levels = PaperLevels();
  BenchEnv env(levels);
  std::printf("Table 3: MTN / MPAN distribution at levels 3, 5, 7\n");
  std::vector<std::string> headers = {"query"};
  for (size_t level : levels) headers.push_back("MTN_L" + std::to_string(level));
  for (size_t level : levels) {
    headers.push_back("MPAN_L" + std::to_string(level));
  }
  TablePrinter table(headers);
  std::vector<size_t> mtn_by_level(levels.size(), 0);
  for (const WorkloadQuery& q : PaperWorkload()) {
    std::vector<std::string> row = {q.id};
    std::vector<Counts> per_level;
    for (size_t level : levels) {
      per_level.push_back(CountAtLevel(env, level, q.text));
    }
    for (size_t i = 0; i < levels.size(); ++i) {
      row.push_back(std::to_string(per_level[i].mtns));
      mtn_by_level[i] += per_level[i].mtns;
    }
    for (size_t i = 0; i < levels.size(); ++i) {
      row.push_back(std::to_string(per_level[i].mpans));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\ntotal MTNs by level:");
  for (size_t i = 0; i < levels.size(); ++i) {
    std::printf(" L%zu=%zu", levels[i], mtn_by_level[i]);
  }
  std::printf(
      "\nexpected shape (paper): both MTNs and MPANs concentrate at higher "
      "levels — counts grow sharply from L3 to L7.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
