// google-benchmark microbenchmarks for the substrates: canonical labeling,
// inverted-index build and lookup, LIKE scanning, join execution, Zipf
// sampling, and lattice generation on small schemas.
#include <benchmark/benchmark.h>

#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "datasets/dblife.h"
#include "datasets/toy_product_db.h"
#include "lattice/canonical_label.h"
#include "lattice/lattice_generator.h"
#include "lattice/lattice_io.h"
#include "kws/pruned_lattice.h"
#include "sql/executor.h"
#include "sql/like_matcher.h"
#include "sql/parser.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace {

const DblifeDataset& SharedDataset() {
  static const DblifeDataset* ds = [] {
    DblifeConfig config;
    config.num_persons = 500;
    config.num_publications = 1500;
    config.num_conferences = 30;
    config.num_organizations = 80;
    config.num_topics = 50;
    auto result = GenerateDblife(config);
    KWSDBG_CHECK(result.ok());
    return new DblifeDataset(std::move(*result));
  }();
  return *ds;
}

void BM_CanonicalLabelPath7(benchmark::State& state) {
  const SchemaGraph& g = SharedDataset().schema;
  RelationId person = *g.RelationIdByName("Person");
  RelationId writes = *g.RelationIdByName("writes");
  RelationId pub = *g.RelationIdByName("Publication");
  RelationId about = *g.RelationIdByName("about_topic");
  RelationId topic = *g.RelationIdByName("Topic");
  RelationId interested = *g.RelationIdByName("interested_in");
  auto edge_between = [&](RelationId a, RelationId b) {
    for (const JoinEdge& e : g.edges()) {
      if ((e.from == a && e.to == b) || (e.from == b && e.to == a)) {
        return e.id;
      }
    }
    KWSDBG_CHECK(false);
    return EdgeId{0};
  };
  // Person1 - writes - Pub1 - about - Topic1 - interested_in - Person2.
  JoinTree tree =
      JoinTree::Single({person, 1})
          .Extend(0, {writes, 0}, edge_between(writes, person))
          .Extend(1, {pub, 1}, edge_between(writes, pub))
          .Extend(2, {about, 0}, edge_between(about, pub))
          .Extend(3, {topic, 1}, edge_between(about, topic))
          .Extend(4, {interested, 0}, edge_between(interested, topic))
          .Extend(5, {person, 2}, edge_between(interested, person));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalLabel(tree));
  }
}
BENCHMARK(BM_CanonicalLabelPath7);

void BM_InvertedIndexBuild(benchmark::State& state) {
  const DblifeDataset& ds = SharedDataset();
  for (auto _ : state) {
    InvertedIndex index = InvertedIndex::Build(*ds.db);
    benchmark::DoNotOptimize(index.num_terms());
  }
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_InvertedIndexLookup(benchmark::State& state) {
  const DblifeDataset& ds = SharedDataset();
  static const InvertedIndex index = InvertedIndex::Build(*ds.db);
  const char* terms[] = {"widom", "data", "probabilistic", "zzzmissing"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TablesContaining(terms[i++ % 4]));
  }
}
BENCHMARK(BM_InvertedIndexLookup);

void BM_LikeMatch(benchmark::State& state) {
  const std::string text =
      "Towards Probabilistic Data at the University of Washington";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch("%washington%", text));
    benchmark::DoNotOptimize(LikeMatch("%zzz%", text));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_SqlParse(benchmark::State& state) {
  const std::string sql =
      "SELECT * FROM Person AS Person_1, writes AS writes_0, Publication AS "
      "Publication_1 WHERE writes_0.person_id = Person_1.id AND "
      "writes_0.publication_id = Publication_1.id AND (Person_1.name LIKE "
      "'%widom%') AND (Publication_1.title LIKE '%trio%')";
  for (auto _ : state) {
    auto stmt = ParseSql(sql);
    benchmark::DoNotOptimize(stmt.ok());
  }
}
BENCHMARK(BM_SqlParse);

void BM_TwoWayJoinExists(benchmark::State& state) {
  const DblifeDataset& ds = SharedDataset();
  Executor executor(ds.db.get());
  JoinNetworkQuery q;
  q.vertices = {{"Person", "P_1", "widom"},
                {"writes", "w_0", ""},
                {"Publication", "Pub_1", "data"}};
  q.joins = {{1, "person_id", 0, "id"}, {1, "publication_id", 2, "id"}};
  for (auto _ : state) {
    auto alive = executor.IsNonEmpty(q);
    benchmark::DoNotOptimize(alive.ok());
  }
}
BENCHMARK(BM_TwoWayJoinExists);

void BM_FullJoinEnumeration(benchmark::State& state) {
  const DblifeDataset& ds = SharedDataset();
  Executor executor(ds.db.get());
  JoinNetworkQuery q;
  q.vertices = {{"Person", "P_1", ""},
                {"writes", "w_0", ""},
                {"Publication", "Pub_1", "probabilistic"}};
  q.joins = {{1, "person_id", 0, "id"}, {1, "publication_id", 2, "id"}};
  for (auto _ : state) {
    auto rs = executor.Execute(q);
    benchmark::DoNotOptimize(rs->rows.size());
  }
}
BENCHMARK(BM_FullJoinEnumeration);

void BM_LatticeGeneration(benchmark::State& state) {
  const DblifeDataset& ds = SharedDataset();
  LatticeConfig config;
  config.max_joins = static_cast<size_t>(state.range(0));
  config.num_keyword_copies = 3;
  for (auto _ : state) {
    auto lattice = LatticeGenerator::Generate(ds.schema, config);
    KWSDBG_CHECK(lattice.ok());
    benchmark::DoNotOptimize((*lattice)->num_nodes());
  }
  auto lattice = LatticeGenerator::Generate(ds.schema, config);
  state.counters["nodes"] =
      static_cast<double>((*lattice)->num_nodes());
}
BENCHMARK(BM_LatticeGeneration)->Arg(2)->Arg(3)->Arg(4);

void BM_LatticeSaveLoad(benchmark::State& state) {
  const DblifeDataset& ds = SharedDataset();
  LatticeConfig config;
  config.max_joins = 3;
  config.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(ds.schema, config);
  KWSDBG_CHECK(lattice.ok());
  for (auto _ : state) {
    std::ostringstream out;
    KWSDBG_CHECK(SaveLattice(**lattice, &out).ok());
    std::istringstream in(out.str());
    auto loaded = LoadLattice(ds.schema, &in);
    KWSDBG_CHECK(loaded.ok());
    benchmark::DoNotOptimize((*loaded)->num_nodes());
  }
  state.counters["nodes"] = static_cast<double>((*lattice)->num_nodes());
}
BENCHMARK(BM_LatticeSaveLoad);

void BM_Phase1And2Pruning(benchmark::State& state) {
  const DblifeDataset& ds = SharedDataset();
  LatticeConfig config;
  config.max_joins = 4;
  config.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(ds.schema, config);
  KWSDBG_CHECK(lattice.ok());
  RelationId person = *ds.schema.RelationIdByName("Person");
  RelationId topic = *ds.schema.RelationIdByName("Topic");
  KeywordBinding binding({{"widom", {person, 1}}, {"trio", {topic, 1}}});
  for (auto _ : state) {
    PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
    benchmark::DoNotOptimize(pl.mtns().size());
  }
}
BENCHMARK(BM_Phase1And2Pruning);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler sampler(100000, 0.8);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace kwsdbg

BENCHMARK_MAIN();
