// Session verdict cache on a repeated workload: every paper query is debugged
// twice through one NonAnswerDebugger session. Pass 1 populates the cache
// (cross-interpretation sharing already kicks in); pass 2 answers entirely
// from cached verdicts. The headline number is the SQL reduction factor
// between passes — the dashboard-refresh scenario where users re-run the
// same keyword queries against an unchanged database. Run with
// KWSDBG_THREADS > 1 to also exercise the batched parallel frontier.
#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "debugger/non_answer_debugger.h"

namespace kwsdbg {
namespace bench {
namespace {

struct PassTotals {
  size_t sql = 0;
  size_t hits = 0;
  size_t misses = 0;
  size_t parallel_rounds = 0;
  size_t max_batch = 0;
  double millis = 0;
};

PassTotals RunPass(NonAnswerDebugger* debugger) {
  PassTotals totals;
  Timer timer;
  for (const WorkloadQuery& q : PaperWorkload()) {
    auto report = debugger->Debug(q.text);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    TraversalStats stats = report->AggregateTraversalStats();
    totals.sql += stats.sql_queries;
    totals.hits += stats.cache_hits;
    totals.misses += stats.cache_misses;
    totals.parallel_rounds += stats.parallel_rounds;
    totals.max_batch = std::max(totals.max_batch, stats.max_batch);
  }
  totals.millis = timer.ElapsedMillis();
  return totals;
}

void Run() {
  const std::vector<size_t> levels = PaperLevels();
  BenchEnv env(levels);
  size_t threads = 1;
  if (const char* t = std::getenv("KWSDBG_THREADS")) {
    threads = static_cast<size_t>(std::strtoul(t, nullptr, 10));
  }
  std::printf(
      "Session verdict cache: paper workload debugged twice per session "
      "(threads=%zu)\n", threads);
  TablePrinter table({"level", "pass", "SQL", "cache hits", "hit rate%",
                      "par rounds", "max batch", "ms"});
  for (size_t level : levels) {
    DebuggerOptions options;
    options.parallel.num_threads = threads;
    NonAnswerDebugger debugger(&env.db(), &env.lattice(level), &env.index(),
                               options);
    PassTotals cold = RunPass(&debugger);
    PassTotals warm = RunPass(&debugger);
    auto add_row = [&](const char* name, const PassTotals& p) {
      const double lookups = static_cast<double>(p.hits + p.misses);
      table.AddRow({std::to_string(level), name, std::to_string(p.sql),
                    std::to_string(p.hits),
                    Fmt(lookups > 0 ? 100.0 * p.hits / lookups : 0.0),
                    std::to_string(p.parallel_rounds),
                    std::to_string(p.max_batch), Fmt(p.millis)});
    };
    add_row("cold", cold);
    add_row("warm", warm);
    const double factor =
        warm.sql > 0 ? static_cast<double>(cold.sql) / warm.sql : 0.0;
    if (warm.sql == 0) {
      std::printf("L%zu: warm pass needed no SQL at all (cold pass: %zu)\n",
                  level, cold.sql);
    } else {
      std::printf("L%zu: SQL reduction factor %.1fx\n", level, factor);
    }
    KWSDBG_CHECK(warm.sql * 2 <= cold.sql)
        << "expected >= 2x SQL reduction on the warm pass";
  }
  table.Print();
  std::printf(
      "\nexpected shape: the warm pass re-answers every query from cached "
      "verdicts (hit rate ~100%%, SQL ~0); the cold pass already benefits "
      "from cross-interpretation sharing within each query.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
