// Reproduces Fig. 13: the percentage of reuse 100 * (1 - Nu/N) per workload
// query, where N is the total number of MTN descendants (with multiplicity)
// and Nu the number of unique ones, at levels 3, 5, and 7.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "kws/pruned_lattice.h"

namespace kwsdbg {
namespace bench {
namespace {

double ReusePercent(const BenchEnv& env, size_t level,
                    const std::string& query) {
  const Lattice& lattice = env.lattice(level);
  KeywordBinder binder(&env.schema(), &env.index(),
                       lattice.config().EffectiveKeywordCopies());
  BindingResult binding_result = binder.Bind(query);
  size_t total = 0, unique = 0;
  for (const KeywordBinding& binding : binding_result.interpretations) {
    PrunedLattice pl = PrunedLattice::Build(lattice, binding);
    total += pl.stats().mtn_desc_total;
    unique += pl.stats().mtn_desc_unique;
  }
  if (total == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(unique) /
                            static_cast<double>(total));
}

void Run() {
  const std::vector<size_t> levels = PaperLevels();
  BenchEnv env(levels);
  std::printf("Fig. 13: percentage of reuse per query, 100*(1 - Nu/N)\n");
  std::vector<std::string> headers = {"query"};
  for (size_t level : levels) {
    headers.push_back("L" + std::to_string(level) + " reuse%");
  }
  TablePrinter table(headers);
  for (const WorkloadQuery& q : PaperWorkload()) {
    std::vector<std::string> row = {q.id};
    for (size_t level : levels) {
      row.push_back(Fmt(ReusePercent(env, level, q.text)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): reuse is query dependent and increases "
      "with the lattice level (more allowed joins -> more shared "
      "sub-queries).\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
