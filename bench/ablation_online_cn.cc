// Ablation: the offline lattice vs traditional online candidate-network
// generation (Sec. 2.2's motivation for Phase 0 — the lattice "bypasses the
// costly candidate network generation phase"). Both sides produce the same
// CNs (asserted in tests); this bench measures the runtime cost each pays
// per query.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "kws/online_cn_generator.h"
#include "kws/pruned_lattice.h"

namespace kwsdbg {
namespace bench {
namespace {

void Run() {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  const size_t max_joins = level - 1;
  std::printf(
      "Ablation (level %zu): offline lattice (Phases 1-2) vs online CN "
      "generation, per query, summed over interpretations\n",
      level);
  TablePrinter table({"query", "lattice_ms", "online_ms", "CNs",
                      "online_trees_explored"});
  double lattice_total = 0, online_total = 0;
  for (const WorkloadQuery& q : PaperWorkload()) {
    KeywordBinder binder(&env.schema(), &env.index(),
                         env.lattice(level).config().EffectiveKeywordCopies());
    BindingResult binding_result = binder.Bind(q.text);
    double lattice_ms = 0, online_ms = 0;
    size_t cns = 0, explored = 0;
    for (const KeywordBinding& binding : binding_result.interpretations) {
      PrunedLattice pl = PrunedLattice::Build(env.lattice(level), binding);
      lattice_ms += pl.stats().prune_millis + pl.stats().mtn_millis;
      auto online =
          GenerateCandidateNetworks(env.schema(), binding, max_joins);
      KWSDBG_CHECK(online.ok());
      online_ms += online->gen_millis;
      cns += online->candidate_networks.size();
      explored += online->trees_explored;
    }
    table.AddRow({q.id, Fmt(lattice_ms, 2), Fmt(online_ms, 2),
                  std::to_string(cns), std::to_string(explored)});
    lattice_total += lattice_ms;
    online_total += online_ms;
  }
  table.Print();
  std::printf(
      "\ntotals: lattice %.1f ms vs online %.1f ms per full workload pass "
      "(the lattice additionally pre-pays %.0f ms once, offline, at "
      "generation time).\n",
      lattice_total, online_total, env.lattice_gen_millis(level));
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
