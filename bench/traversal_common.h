// Shared runner for the traversal-strategy benchmarks (Figs. 11-12,
// Table 4, ablation): run one strategy over every interpretation of one
// query and accumulate its work counters.
#ifndef KWSDBG_BENCH_TRAVERSAL_COMMON_H_
#define KWSDBG_BENCH_TRAVERSAL_COMMON_H_

#include "bench_util.h"
#include "common/logging.h"
#include "kws/pruned_lattice.h"
#include "sql/executor.h"
#include "traversal/evaluator.h"
#include "traversal/strategy.h"

namespace kwsdbg {
namespace bench {

struct StrategyRun {
  size_t sql_queries = 0;
  size_t pa_sample_sql = 0;  ///< Share of sql_queries spent on p_a sampling.
  double sql_millis = 0;
  double total_millis = 0;
  size_t mtns = 0;
  size_t dead_mtns = 0;
  size_t mpans = 0;
};

/// Runs `strategy` over every interpretation of `query` against the lattice
/// at `level`. A fresh Executor (cold caches) is used per call so strategies
/// are compared on equal footing.
inline StrategyRun RunStrategyOnQuery(const BenchEnv& env, size_t level,
                                      const std::string& query,
                                      TraversalStrategy* strategy) {
  StrategyRun out;
  const Lattice& lattice = env.lattice(level);
  KeywordBinder binder(&env.schema(), &env.index(),
                       lattice.config().EffectiveKeywordCopies());
  BindingResult binding_result = binder.Bind(query);
  Executor executor(&env.db());
  executor.RegisterTextIndex(&env.index());
  for (const KeywordBinding& binding : binding_result.interpretations) {
    PrunedLattice pl = PrunedLattice::Build(lattice, binding);
    if (pl.mtns().empty()) continue;
    QueryEvaluator evaluator(&env.db(), &executor, &pl, &env.index());
    auto result = strategy->Run(pl, &evaluator);
    KWSDBG_CHECK(result.ok()) << result.status().ToString();
    out.sql_queries += result->stats.sql_queries;
    out.pa_sample_sql += result->stats.pa_sample_sql;
    out.sql_millis += result->stats.sql_millis;
    out.total_millis += result->stats.total_millis;
    for (const MtnOutcome& o : result->outcomes) {
      ++out.mtns;
      if (!o.alive) {
        ++out.dead_mtns;
        out.mpans += o.mpans.size();
      }
    }
  }
  return out;
}

}  // namespace bench
}  // namespace kwsdbg

#endif  // KWSDBG_BENCH_TRAVERSAL_COMMON_H_
