// Extension experiment (not in the paper): how the end-to-end debugging cost
// scales with the dataset size, at a fixed lattice level. The lattice and
// its traversal depend only on the schema, so the SQL-execution time is the
// only component that should grow — which is what makes the offline-lattice
// design viable for production-sized catalogs.
#include <cstdio>

#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

void Run() {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  const double scales[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::printf(
      "Scaling (level %zu, SBH over all ten queries): dataset size vs "
      "debugging cost\n",
      level);
  TablePrinter table({"scale", "tuples", "SQL queries", "SQL ms",
                      "prune+mtn ms"});
  for (double scale : scales) {
    DblifeConfig config = EnvDblifeConfig().Scaled(scale);
    auto ds = GenerateDblife(config);
    KWSDBG_CHECK(ds.ok());
    InvertedIndex index = InvertedIndex::Build(*ds->db);
    LatticeConfig lconfig;
    lconfig.max_joins = level - 1;
    lconfig.num_keyword_copies = 3;
    auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
    KWSDBG_CHECK(lattice.ok());

    size_t sql = 0;
    double sql_ms = 0, phase_ms = 0;
    KeywordBinder binder(&ds->schema, &index, 3);
    Executor executor(ds->db.get());
    auto strategy = MakeStrategy(TraversalKind::kScoreBased);
    for (const WorkloadQuery& q : PaperWorkload()) {
      BindingResult binding_result = binder.Bind(q.text);
      for (const KeywordBinding& binding : binding_result.interpretations) {
        PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
        phase_ms += pl.stats().prune_millis + pl.stats().mtn_millis;
        if (pl.mtns().empty()) continue;
        QueryEvaluator evaluator(ds->db.get(), &executor, &pl, &index);
        auto result = strategy->Run(pl, &evaluator);
        KWSDBG_CHECK(result.ok());
        sql += result->stats.sql_queries;
        sql_ms += result->stats.sql_millis;
      }
    }
    table.AddRow({Fmt(scale, 2), std::to_string(ds->db->TotalTuples()),
                  std::to_string(sql), Fmt(sql_ms, 1), Fmt(phase_ms, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: SQL query *counts* barely move (they depend on the "
      "aliveness pattern, not the data volume) while SQL *time* grows with "
      "the data; the lattice-side phases stay flat.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
