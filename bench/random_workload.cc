// Robustness sweep beyond Table 2: a randomized workload of 40 queries
// sampled from the dataset's actual vocabulary, comparing the reuse-based
// and score-based strategies. Generalizes Fig. 11's conclusion ("SBH
// performs relatively well in all the cases we tested") past the ten
// hand-picked queries.
#include <cstdio>
#include <cstdlib>

#include "datasets/query_generator.h"
#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

void Run() {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  QueryGeneratorConfig gconfig;
  const char* seed_env = std::getenv("KWSDBG_WORKLOAD_SEED");
  gconfig.seed =
      seed_env == nullptr ? 7 : static_cast<uint64_t>(std::atoll(seed_env));
  gconfig.min_keywords = 2;
  gconfig.max_keywords = 3;
  RandomQueryGenerator generator(&env.index(), gconfig);
  const std::vector<std::string> queries = generator.Batch(40);
  std::printf(
      "Random workload (level %zu, seed %llu — override with "
      "KWSDBG_WORKLOAD_SEED): 40 queries sampled from the %zu-term "
      "vocabulary (Zipf theta %.1f)\n",
      level, static_cast<unsigned long long>(gconfig.seed),
      generator.vocabulary_size(), gconfig.popularity_theta);

  struct Totals {
    size_t sql = 0;
    double ms = 0;
    size_t worst = 0;
  };
  const TraversalKind kinds[] = {TraversalKind::kBottomUpWithReuse,
                                 TraversalKind::kTopDownWithReuse,
                                 TraversalKind::kScoreBased};
  Totals totals[3];
  size_t queries_with_mtns = 0, total_mtns = 0, dead_mtns = 0;
  for (const std::string& q : queries) {
    bool counted = false;
    for (size_t k = 0; k < 3; ++k) {
      auto strategy = MakeStrategy(kinds[k]);
      StrategyRun run = RunStrategyOnQuery(env, level, q, strategy.get());
      totals[k].sql += run.sql_queries;
      totals[k].ms += run.sql_millis;
      totals[k].worst = std::max(totals[k].worst, run.sql_queries);
      if (!counted && run.mtns > 0) {
        ++queries_with_mtns;
        total_mtns += run.mtns;
        dead_mtns += run.dead_mtns;
        counted = true;
      }
    }
  }
  std::printf(
      "%zu of 40 queries produced candidate networks (%zu CNs total, %zu "
      "non-answers)\n\n",
      queries_with_mtns, total_mtns, dead_mtns);
  TablePrinter table({"strategy", "total SQL", "worst query SQL",
                      "total SQL ms"});
  for (size_t k = 0; k < 3; ++k) {
    table.AddRow({std::string(TraversalKindName(kinds[k])),
                  std::to_string(totals[k].sql),
                  std::to_string(totals[k].worst), Fmt(totals[k].ms, 1)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: SBH stays within a small factor of the better of "
      "BUWR/TDWR in total and avoids both of their worst cases.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
