// Reproduces Fig. 11: the number of SQL queries each traversal strategy
// executes per workload query at lattice level 5.
#include <cstdio>

#include "traversal_common.h"

namespace kwsdbg {
namespace bench {
namespace {

void Run() {
  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv env({level});
  std::printf(
      "Fig. 11 (level %zu): SQL queries executed per traversal strategy\n",
      level);
  TablePrinter table({"query", "BU", "BUWR", "TD", "TDWR", "SBH"});
  for (const WorkloadQuery& q : PaperWorkload()) {
    std::vector<std::string> row = {q.id};
    for (TraversalKind kind :
         {TraversalKind::kBottomUp, TraversalKind::kBottomUpWithReuse,
          TraversalKind::kTopDown, TraversalKind::kTopDownWithReuse,
          TraversalKind::kScoreBased}) {
      auto strategy = MakeStrategy(kind);
      StrategyRun run = RunStrategyOnQuery(env, level, q.text, strategy.get());
      row.push_back(std::to_string(run.sql_queries));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): BUWR <= BU, TDWR <= TD; SBH competitive "
      "with the best on every query.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
