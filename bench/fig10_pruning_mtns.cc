// Reproduces Fig. 10 and the Sec. 3.3 text: per workload query, the keyword
// mapping time, nodes remaining after Phase 1 pruning, MTN counts, and the
// (total vs unique) MTN descendants that quantify the reuse opportunity.
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "kws/pruned_lattice.h"

namespace kwsdbg {
namespace bench {
namespace {

struct QueryStats {
  double bind_millis = 0;
  double phase12_millis = 0;
  size_t interpretations = 0;
  size_t surviving = 0;
  size_t mtns = 0;
  size_t desc_total = 0;
  size_t desc_unique = 0;
};

QueryStats CollectStats(const BenchEnv& env, size_t level,
                        const std::string& query) {
  QueryStats out;
  const Lattice& lattice = env.lattice(level);
  KeywordBinder binder(&env.schema(), &env.index(),
                       lattice.config().EffectiveKeywordCopies());
  BindingResult binding_result = binder.Bind(query);
  out.bind_millis = binding_result.bind_millis;
  for (const KeywordBinding& binding : binding_result.interpretations) {
    PrunedLattice pl = PrunedLattice::Build(lattice, binding);
    ++out.interpretations;
    out.surviving += pl.stats().surviving_nodes;
    out.mtns += pl.stats().num_mtns;
    out.desc_total += pl.stats().mtn_desc_total;
    out.desc_unique += pl.stats().mtn_desc_unique;
    out.phase12_millis += pl.stats().prune_millis + pl.stats().mtn_millis;
  }
  return out;
}

void Run() {
  BenchEnv env(PaperLevels());
  for (size_t level : PaperLevels()) {
    if (level != 5 && level != 7) continue;  // the levels Sec. 3.3 discusses
    std::printf(
        "Fig. 10 (level %zu): keyword pruning and MTNs per query\n", level);
    TablePrinter table({"query", "interp", "map_ms", "phase12_ms",
                        "nodes_after_prune", "prune%", "MTNs", "desc",
                        "unique_desc"});
    const size_t lattice_nodes = env.lattice(level).num_nodes();
    double total_map = 0;
    size_t n = 0;
    double prune_pct_sum = 0;
    for (const WorkloadQuery& q : PaperWorkload()) {
      QueryStats s = CollectStats(env, level, q.text);
      const double per_interp_surviving =
          s.interpretations == 0
              ? 0
              : static_cast<double>(s.surviving) /
                    static_cast<double>(s.interpretations);
      const double prune_pct =
          100.0 * (1.0 - per_interp_surviving /
                             static_cast<double>(lattice_nodes));
      table.AddRow({q.id, std::to_string(s.interpretations),
                    Fmt(s.bind_millis, 2), Fmt(s.phase12_millis, 2),
                    std::to_string(s.surviving), Fmt(prune_pct),
                    std::to_string(s.mtns), std::to_string(s.desc_total),
                    std::to_string(s.desc_unique)});
      total_map += s.bind_millis;
      prune_pct_sum += prune_pct;
      ++n;
    }
    table.Print();
    std::printf(
        "avg keyword->schema mapping time: %.2f ms (paper: 7-66 ms, avg 26 "
        "ms); avg pruning: %.1f%% (paper: 98%% at level 5, 94.3%% at level "
        "7)\n\n",
        total_map / static_cast<double>(n),
        prune_pct_sum / static_cast<double>(n));
  }
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::Run();
  return 0;
}
