// Adaptive traversal gate: the online-learned p_a model + per-query strategy
// planner (src/traversal/pa_model.h, strategy_planner.h) vs. every static
// strategy — see docs/architecture.md "Adaptive traversal".
//
// For each workload (Table 2 DBLife, a random-query DBLife sweep, and the
// e-commerce dataset) the bench runs four phases against one AdaptiveState:
//
//   warm     — observation-only passes fill the p_a model from real verdicts
//              (the model is advisory: verdicts stay ground truth).
//   freeze   — the model stops observing/decaying so every later pass sees
//              the same frozen estimates.
//   train    — each of the six planner arms replays the workload with a
//              fresh debugger and no verdict cache; per-interpretation costs
//              feed StrategyPlanner::ObserveArm and double as the static
//              baselines. Traversal is deterministic against a frozen model,
//              so these measured costs are exactly what the adaptive pass
//              will pay for the same (bucket, arm) picks.
//   measure  — the planner is frozen (pure exploitation) and the workload
//              replays once more in adaptive mode through the shared state.
//
// Gates (per workload):
//   - adaptive total SQL <= every static arm's total (always checked; holds
//     by construction: the planner picks the per-bucket argmin of the same
//     deterministic costs the baselines just measured).
//   - adaptive traversal wall-clock <= every static arm's, with a 10% jitter
//     allowance (full mode + NDEBUG only; smoke timings are sub-millisecond
//     and all noise).
//   - classification signatures bit-identical across every arm and the
//     adaptive pass (verdict order never changes verdicts).
//   - planner/model counters visible in the DebugService stats JSON with
//     per-shard model state actually observing.
//
// Emits BENCH_adaptive.json.
//
//   ./adaptive_workload [--smoke] [--out=BENCH_adaptive.json]
//
// Environment knobs: KWSDBG_SEED / KWSDBG_SCALE (bench_util.h),
// KWSDBG_WORKLOAD_SEED (random sweep), KWSDBG_ADAPTIVE_SEED /
// KWSDBG_EXPLORE_EPS (planner; printed below so regressions reproduce).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "datasets/dblife.h"
#include "datasets/ecommerce.h"
#include "datasets/query_generator.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "lattice/lattice_generator.h"
#include "service/debug_service.h"
#include "service/service_json.h"
#include "text/inverted_index.h"
#include "traversal/strategy_planner.h"

namespace kwsdbg {
namespace bench {
namespace {

struct TierEnv {
  std::string name;
  std::unique_ptr<Database> db;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
  std::unique_ptr<InvertedIndex> index;
};

/// One workload over one dataset; each gets its own AdaptiveState so the
/// gate is judged on what the model learned from *this* workload alone.
struct Workload {
  const TierEnv* tier = nullptr;
  std::string name;
  std::vector<std::string> queries;
};

struct PassMeasure {
  size_t sql = 0;
  double traversal_millis = 0;  ///< Sum of per-interpretation total_millis.
  double wall_millis = 0;       ///< Whole pass, including binding/reports.
  std::string signature;
  size_t explored = 0;
  std::map<std::string, size_t> decisions;  ///< arm label -> interp count.
};

/// Pre-traversal features per (query, interpretation), computed bench-side
/// with the same binder configuration the debugger uses so the order and
/// the feature buckets line up 1:1 with report.interpretations.
std::vector<std::vector<PlannerFeatures>> ComputeWorkloadFeatures(
    const Workload& w) {
  const TierEnv& tier = *w.tier;
  KeywordBinder binder(&tier.schema, tier.index.get(),
                       tier.lattice->config().EffectiveKeywordCopies());
  std::vector<std::vector<PlannerFeatures>> features;
  for (const std::string& query : w.queries) {
    BindingResult binding = binder.Bind(query);
    std::vector<PlannerFeatures> per_interp;
    for (const KeywordBinding& b : binding.interpretations) {
      PrunedLattice pl = PrunedLattice::Build(*tier.lattice, b);
      per_interp.push_back(ComputePlannerFeatures(pl, tier.index.get()));
    }
    features.push_back(std::move(per_interp));
  }
  return features;
}

/// Observation-only warm pass: a static strategy with the evaluator's
/// observation hook attached. Different strategies evaluate different node
/// subsets, so two passes (bottom-up-reuse + SBH) cover low and mixed levels.
void WarmModel(const Workload& w, AdaptiveState* state) {
  for (TraversalKind kind :
       {TraversalKind::kBottomUpWithReuse, TraversalKind::kScoreBased}) {
    DebuggerOptions options;
    options.strategy = kind;
    options.verdict_cache_capacity = 0;
    options.eval.pa_model = &state->pa();
    NonAnswerDebugger debugger(w.tier->db.get(), w.tier->lattice.get(),
                               w.tier->index.get(), options);
    for (const std::string& query : w.queries) {
      auto report = debugger.Debug(query);
      KWSDBG_CHECK(report.ok()) << report.status().ToString();
    }
  }
}

/// Replays the workload under one pinned arm with a fresh debugger and no
/// verdict cache — the same per-interpretation conditions the adaptive pass
/// runs under. When `train` is set, per-interpretation costs feed the
/// planner via ObserveArm using the precomputed feature vectors.
PassMeasure MeasureArm(const Workload& w, PlannerArm arm, AdaptiveState* state,
                       const std::vector<std::vector<PlannerFeatures>>* features,
                       bool train) {
  DebuggerOptions options;
  options.strategy = ArmTraversalKind(arm);
  options.verdict_cache_capacity = 0;
  if (arm == PlannerArm::kSbhAdaptive) options.sbh.pa_model = &state->pa();
  // Mirror the adaptive debugger's evaluator wiring; Observe() no-ops on the
  // frozen model, so this only equalizes the code path being timed.
  options.eval.pa_model = &state->pa();
  NonAnswerDebugger debugger(w.tier->db.get(), w.tier->lattice.get(),
                             w.tier->index.get(), options);
  PassMeasure m;
  Timer timer;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    auto report = debugger.Debug(w.queries[q]);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    m.signature += report->ClassificationSignature();
    m.signature += '\n';
    const auto& interps = report->interpretations;
    if (train) {
      KWSDBG_CHECK(interps.size() == (*features)[q].size())
          << w.name << ": bench-side binding disagrees with the debugger on "
          << w.queries[q];
    }
    for (size_t i = 0; i < interps.size(); ++i) {
      const TraversalStats& ts = interps[i].traversal_stats;
      m.sql += ts.sql_queries;
      m.traversal_millis += ts.total_millis;
      if (train) {
        state->planner().ObserveArm((*features)[q][i], arm, ts.sql_queries,
                                    ts.total_millis);
      }
    }
  }
  m.wall_millis = timer.ElapsedMillis();
  return m;
}

/// The measured adaptive pass: frozen state, pure exploitation.
PassMeasure MeasureAdaptive(const Workload& w, AdaptiveState* state) {
  DebuggerOptions options;
  options.adaptive = true;
  options.shared_adaptive = state;
  options.verdict_cache_capacity = 0;
  NonAnswerDebugger debugger(w.tier->db.get(), w.tier->lattice.get(),
                             w.tier->index.get(), options);
  PassMeasure m;
  Timer timer;
  for (const std::string& query : w.queries) {
    auto report = debugger.Debug(query);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    m.signature += report->ClassificationSignature();
    m.signature += '\n';
    for (const InterpretationReport& interp : report->interpretations) {
      const TraversalStats& ts = interp.traversal_stats;
      m.sql += ts.sql_queries;
      m.traversal_millis += ts.total_millis;
      m.explored += ts.planner_explored;
      if (!ts.planned_strategy.empty()) ++m.decisions[ts.planned_strategy];
    }
  }
  m.wall_millis = timer.ElapsedMillis();
  return m;
}

struct BenchRow {
  std::string workload;
  std::string arm;  // "adaptive" for the measured pass
  size_t sql = 0;
  double traversal_millis = 0;
  double wall_millis = 0;
  bool signature_match = false;

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\"workload\":\"" << workload << "\",\"arm\":\"" << arm
        << "\",\"sql_queries\":" << sql
        << ",\"traversal_millis\":" << traversal_millis
        << ",\"wall_millis\":" << wall_millis
        << ",\"signature_match\":" << (signature_match ? "true" : "false")
        << "}";
    return out.str();
  }
};

size_t RunWorkload(const Workload& w, bool smoke, TablePrinter* table,
                   std::vector<BenchRow>* rows, std::ostringstream* json) {
  size_t violations = 0;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++violations;
      std::printf("  [GATE] %s: %s\n", w.name.c_str(), what.c_str());
    }
  };

  AdaptiveState state(AdaptiveOptions::FromEnv());
  const auto features = ComputeWorkloadFeatures(w);

  WarmModel(w, &state);
  state.pa().Freeze();  // train + measure see identical estimates

  std::vector<std::pair<PlannerArm, PassMeasure>> arms;
  for (PlannerArm arm : AllPlannerArms()) {
    arms.emplace_back(arm, MeasureArm(w, arm, &state, &features, true));
  }
  state.Freeze();  // planner: pure exploitation from here on

  const PassMeasure adaptive = MeasureAdaptive(w, &state);

  const std::string& reference = arms.front().second.signature;
  for (const auto& [arm, m] : arms) {
    const bool match = m.signature == reference;
    gate(match, std::string(PlannerArmName(arm)) + " classifies differently");
    gate(adaptive.sql <= m.sql,
         "adaptive ran more SQL than " + std::string(PlannerArmName(arm)) +
             " (" + std::to_string(adaptive.sql) + " vs " +
             std::to_string(m.sql) + ")");
#ifdef NDEBUG
    if (!smoke) {
      // 10% relative + 1ms absolute allowance: sub-millisecond workloads
      // (small envs) are pure timer jitter and must not flip the gate.
      gate(adaptive.traversal_millis <= m.traversal_millis * 1.10 + 1.0,
           "adaptive traversal slower than " +
               std::string(PlannerArmName(arm)) + " beyond jitter (" +
               Fmt(adaptive.traversal_millis) + "ms vs " +
               Fmt(m.traversal_millis) + "ms)");
    }
#endif
    table->AddRow({w.name, std::string(PlannerArmName(arm)),
                   std::to_string(m.sql), Fmt(m.traversal_millis),
                   Fmt(m.wall_millis), match ? "yes" : "NO", "-"});
    rows->push_back({w.name, std::string(PlannerArmName(arm)), m.sql,
                     m.traversal_millis, m.wall_millis, match});
  }
  const bool adaptive_match = adaptive.signature == reference;
  gate(adaptive_match, "adaptive pass classifies differently");
  gate(adaptive.explored == 0, "frozen planner still explored");

  std::string picks;
  for (const auto& [label, count] : adaptive.decisions) {
    if (!picks.empty()) picks += ' ';
    picks += label + ":" + std::to_string(count);
  }
  table->AddRow({w.name, "adaptive", std::to_string(adaptive.sql),
                 Fmt(adaptive.traversal_millis), Fmt(adaptive.wall_millis),
                 adaptive_match ? "yes" : "NO", picks});
  rows->push_back({w.name, "adaptive", adaptive.sql,
                   adaptive.traversal_millis, adaptive.wall_millis,
                   adaptive_match});

  *json << "{\"workload\":\"" << w.name
        << "\",\"queries\":" << w.queries.size()
        << ",\"planner_buckets\":" << state.planner().buckets()
        << ",\"pa_observations\":" << state.pa().observations()
        << ",\"decisions\":{";
  bool first = true;
  for (const auto& [label, count] : adaptive.decisions) {
    if (!first) *json << ',';
    first = false;
    *json << '"' << label << "\":" << count;
  }
  *json << "},\"pa_buckets\":[";
  const auto snapshot = state.pa().Snapshot();
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) *json << ',';
    *json << "{\"level\":" << snapshot[i].level
          << ",\"sel_bucket\":" << snapshot[i].sel_bucket
          << ",\"alive\":" << snapshot[i].alive
          << ",\"total\":" << snapshot[i].total
          << ",\"pa\":" << snapshot[i].pa << '}';
  }
  *json << "]}";
  return violations;
}

/// Adaptive mode through the sharded service: planner/model counters must be
/// visible in the stats JSON and the per-shard models must actually observe.
size_t RunServiceCheck(const Workload& w, std::ostringstream* json) {
  size_t violations = 0;
  auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++violations;
      std::printf("  [GATE] service: %s\n", what.c_str());
    }
  };
  ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 2;
  options.debugger.adaptive = true;
  options.debugger.adaptive_options = AdaptiveOptions::FromEnv();
  DebugService service(w.tier->db.get(), w.tier->lattice.get(),
                       w.tier->index.get(), options);
  BatchResult batch = service.RunBatch(w.queries);
  gate(batch.status.ok(),
       "adaptive batch failed: " + batch.status.ToString());
  gate(batch.stats.planner_decisions > 0,
       "no planner decisions surfaced in service stats");
  size_t shard_observations = 0;
  for (const ShardStats& shard : batch.stats.shards) {
    shard_observations += shard.pa_observations;
  }
  gate(shard_observations > 0, "per-shard p_a models never observed");
  const std::string stats_json = ServiceStatsToJson(batch.stats);
  gate(stats_json.find("\"planner_decisions\"") != std::string::npos,
       "service stats JSON does not expose planner_decisions");
  gate(stats_json.find("\"pa_observations\"") != std::string::npos,
       "service stats JSON does not expose pa_observations");
  *json << ",\"service_stats\":" << stats_json;
  return violations;
}

TierEnv BuildDblifeEnv(bool smoke) {
  DblifeConfig config = EnvDblifeConfig();
  if (smoke) config = config.Scaled(0.05);
  auto dataset = GenerateDblife(config);
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  TierEnv env;
  env.name = smoke ? "dblife(0.05x)" : "dblife";
  env.db = std::move(dataset->db);
  env.schema = std::move(dataset->schema);
  LatticeConfig lconfig;
  lconfig.max_joins = smoke ? 2 : 3;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(env.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  env.lattice = std::move(*lattice);
  env.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*env.db));
  return env;
}

TierEnv BuildEcommerceEnv(bool smoke) {
  EcommerceConfig config;
  config.num_items = smoke ? 120 : 500;
  auto dataset = GenerateEcommerce(config);
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  TierEnv env;
  env.name = "ecommerce";
  env.db = std::move(dataset->db);
  env.schema = std::move(dataset->schema);
  LatticeConfig lconfig;
  lconfig.max_joins = 2;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(env.schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  env.lattice = std::move(*lattice);
  env.index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*env.db));
  return env;
}

std::vector<std::string> RandomQueries(const TierEnv& tier, size_t n) {
  QueryGeneratorConfig config;
  config.seed = 7;
  if (const char* seed_env = std::getenv("KWSDBG_WORKLOAD_SEED")) {
    config.seed = std::strtoull(seed_env, nullptr, 10);
  }
  config.min_keywords = 2;
  config.max_keywords = 3;
  RandomQueryGenerator generator(tier.index.get(), config);
  return generator.Batch(n);
}

int Run(bool smoke, const std::string& out_path) {
  const AdaptiveOptions adaptive_options = AdaptiveOptions::FromEnv();
  std::printf(
      "Adaptive traversal workload, %s mode\n"
      "planner seed %llu (KWSDBG_ADAPTIVE_SEED), explore eps %.3f "
      "(KWSDBG_EXPLORE_EPS)\n",
      smoke ? "smoke" : "full",
      static_cast<unsigned long long>(adaptive_options.planner.seed),
      adaptive_options.planner.explore_eps);

  const TierEnv dblife = BuildDblifeEnv(smoke);
  const TierEnv ecommerce = BuildEcommerceEnv(smoke);

  Workload table2{&dblife, "dblife-table2", {}};
  for (const WorkloadQuery& q : PaperWorkload()) {
    table2.queries.push_back(q.text);
    if (smoke && table2.queries.size() >= 3) break;
  }
  Workload random{&dblife, "dblife-random",
                  RandomQueries(dblife, smoke ? 4 : 16)};
  Workload shop{&ecommerce, "ecommerce",
                {"saffron candle", "lavender soap"}};
  if (!smoke) shop.queries.push_back("handmade crimson candle");

  size_t violations = 0;
  std::vector<BenchRow> rows;
  TablePrinter table({"workload", "arm", "SQL", "traversal ms", "wall ms",
                      "sig", "picks"});
  std::ostringstream workload_jsons;
  bool first = true;
  for (const Workload* w : {&table2, &random, &shop}) {
    if (!first) workload_jsons << ',';
    first = false;
    violations += RunWorkload(*w, smoke, &table, &rows, &workload_jsons);
  }
  table.Print();

  std::ostringstream service_json;
  violations += RunServiceCheck(shop, &service_json);

  {
    std::ostringstream json;
    json << "{\"bench\":\"adaptive_workload\",\"smoke\":"
         << (smoke ? "true" : "false")
         << ",\"planner_seed\":" << adaptive_options.planner.seed
         << ",\"explore_eps\":" << adaptive_options.planner.explore_eps
         << ",\"runs\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) json << ',';
      json << rows[i].ToJson();
    }
    json << "],\"workloads\":[" << workload_jsons.str() << ']'
         << service_json.str() << ",\"violations\":" << violations << '}';
    std::ofstream f(out_path);
    if (f) {
      f << json.str() << '\n';
      std::printf("\nwrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }
  }

  if (violations > 0) {
    std::printf("\nADAPTIVE GATE FAILED: %zu violation(s)\n", violations);
    return 1;
  }
  std::printf(
      "\nADAPTIVE GATE OK: planner-picked traversal never exceeds any "
      "static strategy's SQL, classifications bit-identical\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_adaptive.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  return kwsdbg::bench::Run(smoke, out_path);
}
