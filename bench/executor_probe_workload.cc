// Executor v1 vs. v2 on the existence-probe workload: every strategy's
// aliveness probes are re-run twice per environment — once with the v1
// configuration (LIKE-scan keyword candidates, no semijoin pre-reduction)
// and once with the v2 configuration (posting-list candidates + semijoin
// pre-reduction). The session verdict cache is disabled on both sides so
// each SQL probe really hits the executor.
//
// Correctness gate, not just a timing report: the A(K)/N(K)/M(K)
// classification of every query must be identical between the two
// configurations for all five strategies — the bench aborts otherwise.
// On the v2 side the bench additionally checks that the indexed path
// never fell back to a full keyword scan and that the semijoin pass
// eliminated at least one probe outright.
//
//   ./executor_probe_workload [--smoke] [--out=BENCH_executor.json]
//
// --smoke replays the toy product DB only (the ctest gate); the default
// workload is DBLife + e-commerce. Either way the per-variant counters are
// written as a machine-readable artifact (same schema family as
// BENCH_resilience.json / BENCH_probe_engine.json).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "datasets/ecommerce.h"
#include "datasets/toy_product_db.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"

namespace kwsdbg {
namespace bench {
namespace {

/// One dataset + lattice + keyword queries to replay.
struct ProbeEnv {
  std::string name;
  const Database* db = nullptr;
  const Lattice* lattice = nullptr;
  const InvertedIndex* index = nullptr;
  std::vector<std::string> queries;
};

struct VariantRun {
  std::string signature;  ///< A/N/M classification, bit-for-bit.
  TraversalStats stats;
  double millis = 0;
};

/// Serializes the parts of a report that define the debugging outcome:
/// per interpretation, the alive networks and the dead networks with
/// their MPANs and culprits. Any divergence between executor variants
/// shows up as a signature mismatch.
void AppendSignature(const DebugReport& report, std::string* out) {
  out->append("Q ").append(report.keyword_query).append("\n");
  for (const std::string& missing : report.missing_keywords) {
    out->append("missing ").append(missing).append("\n");
  }
  for (const InterpretationReport& interp : report.interpretations) {
    out->append("I ").append(interp.binding).append("\n");
    for (const AnswerReport& a : interp.answers) {
      out->append("A ").append(a.query.network).append("\n");
    }
    for (const NonAnswerReport& na : interp.non_answers) {
      out->append("N ").append(na.query.network).append("\n");
      for (const NodeReport& m : na.mpans) {
        out->append("M ").append(m.network).append("\n");
      }
      for (const NodeReport& c : na.culprits) {
        out->append("C ").append(c.network).append("\n");
      }
    }
  }
}

/// One (env, strategy, variant) record for the JSON artifact.
struct BenchRow {
  std::string env;
  std::string strategy;
  std::string variant;
  TraversalStats stats;
  double millis = 0;

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\"env\":\"" << env << "\",\"strategy\":\"" << strategy
        << "\",\"variant\":\"" << variant
        << "\",\"sql_queries\":" << stats.sql_queries
        << ",\"posting_hits\":" << stats.posting_hits
        << ",\"scan_fallbacks\":" << stats.scan_fallbacks
        << ",\"semijoin_eliminations\":" << stats.semijoin_eliminations
        << ",\"rows_probed\":" << stats.rows_probed
        << ",\"rows_filtered\":" << stats.rows_filtered
        << ",\"index_builds\":" << stats.index_builds
        << ",\"millis\":" << millis << "}";
    return out.str();
  }
};

VariantRun RunVariant(const ProbeEnv& env, TraversalKind kind, bool v2) {
  DebuggerOptions options;
  options.strategy = kind;
  options.verdict_cache_capacity = 0;  // measure raw probes, not the cache
  options.executor.use_text_index = v2;
  options.executor.semijoin_reduction = v2;
  NonAnswerDebugger debugger(env.db, env.lattice, env.index, options);
  VariantRun run;
  Timer timer;
  for (const std::string& query : env.queries) {
    auto report = debugger.Debug(query);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    AppendSignature(*report, &run.signature);
    TraversalStats stats = report->AggregateTraversalStats();
    run.stats.sql_queries += stats.sql_queries;
    run.stats.sql_millis += stats.sql_millis;
    run.stats.posting_hits += stats.posting_hits;
    run.stats.scan_fallbacks += stats.scan_fallbacks;
    run.stats.semijoin_eliminations += stats.semijoin_eliminations;
    run.stats.rows_probed += stats.rows_probed;
    run.stats.rows_filtered += stats.rows_filtered;
    run.stats.index_builds += stats.index_builds;
  }
  run.millis = timer.ElapsedMillis();
  return run;
}

void RunEnv(const ProbeEnv& env, TablePrinter* table, bool require_gains,
            std::vector<BenchRow>* rows) {
  const TraversalKind kinds[] = {
      TraversalKind::kBottomUp, TraversalKind::kTopDown,
      TraversalKind::kBottomUpWithReuse, TraversalKind::kTopDownWithReuse,
      TraversalKind::kScoreBased};
  for (TraversalKind kind : kinds) {
    VariantRun v1 = RunVariant(env, kind, /*v2=*/false);
    VariantRun v2 = RunVariant(env, kind, /*v2=*/true);
    KWSDBG_CHECK(v1.signature == v2.signature)
        << env.name << "/" << TraversalKindName(kind)
        << ": v1 and v2 classify the workload differently";
    KWSDBG_CHECK(v2.stats.scan_fallbacks == 0)
        << env.name << "/" << TraversalKindName(kind)
        << ": indexed path fell back to " << v2.stats.scan_fallbacks
        << " full keyword scan(s)";
    if (require_gains) {
      KWSDBG_CHECK(v2.stats.semijoin_eliminations > 0)
          << env.name << "/" << TraversalKindName(kind)
          << ": semijoin pre-reduction never fired";
    }
    auto add_row = [&](const char* variant, const VariantRun& run) {
      table->AddRow({env.name, std::string(TraversalKindName(kind)), variant,
                     std::to_string(run.stats.sql_queries),
                     std::to_string(run.stats.posting_hits),
                     std::to_string(run.stats.scan_fallbacks),
                     std::to_string(run.stats.semijoin_eliminations),
                     std::to_string(run.stats.rows_probed),
                     std::to_string(run.stats.rows_filtered),
                     Fmt(run.millis)});
      rows->push_back({env.name, std::string(TraversalKindName(kind)),
                       variant, run.stats, run.millis});
    };
    add_row("v1", v1);
    add_row("v2", v2);
  }
}

/// Writes the collected rows as the BENCH_executor.json artifact.
void WriteArtifact(const std::string& out_path, bool smoke,
                   const std::vector<BenchRow>& rows) {
  std::ostringstream json;
  json << "{\"bench\":\"executor_probe_workload\",\"smoke\":"
       << (smoke ? "true" : "false") << ",\"runs\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) json << ',';
    json << rows[i].ToJson();
  }
  json << "]}";
  std::ofstream f(out_path);
  if (f) {
    f << json.str() << '\n';
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_executor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  std::vector<BenchRow> rows;

  TablePrinter table({"env", "strategy", "variant", "SQL", "posting",
                      "scans", "semijoin kills", "rows probed",
                      "rows filtered", "ms"});

  LatticeConfig small_lattice;
  small_lattice.max_joins = 2;
  small_lattice.num_keyword_copies = 2;

  if (smoke) {
    auto toy = BuildToyProductDatabase();
    KWSDBG_CHECK(toy.ok()) << toy.status().ToString();
    auto lattice = LatticeGenerator::Generate(toy->schema, small_lattice);
    KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
    InvertedIndex index = InvertedIndex::Build(*toy->db);
    ProbeEnv env;
    env.name = "toy";
    env.db = toy->db.get();
    env.lattice = lattice->get();
    env.index = &index;
    env.queries = {"saffron candle", "scented candle", "red candle"};
    std::printf("Executor probe workload (smoke): toy product DB, %zu "
                "queries\n", env.queries.size());
    RunEnv(env, &table, /*require_gains=*/true, &rows);
    table.Print();
    WriteArtifact(out_path, smoke, rows);
    std::printf("\nsmoke OK: classifications identical, zero scan "
                "fallbacks on the indexed path\n");
    return 0;
  }

  const size_t level = std::min<size_t>(5, EnvMaxLevel());
  BenchEnv dblife({level});
  ProbeEnv paper;
  paper.name = "dblife L" + std::to_string(level);
  paper.db = &dblife.db();
  paper.lattice = &dblife.lattice(level);
  paper.index = &dblife.index();
  for (const WorkloadQuery& q : PaperWorkload()) paper.queries.push_back(q.text);

  EcommerceConfig shop_config;
  shop_config.num_items = 500;
  auto shop = GenerateEcommerce(shop_config);
  KWSDBG_CHECK(shop.ok()) << shop.status().ToString();
  auto shop_lattice = LatticeGenerator::Generate(shop->schema, small_lattice);
  KWSDBG_CHECK(shop_lattice.ok()) << shop_lattice.status().ToString();
  InvertedIndex shop_index = InvertedIndex::Build(*shop->db);
  ProbeEnv ecommerce;
  ecommerce.name = "ecommerce";
  ecommerce.db = shop->db.get();
  ecommerce.lattice = shop_lattice->get();
  ecommerce.index = &shop_index;
  ecommerce.queries = {"saffron candle", "lavender soap", "azure diffuser",
                       "handmade crimson candle"};

  std::printf("Executor probe workload: v1 (LIKE scans, no semijoin) vs "
              "v2 (posting lists + semijoin), verdict cache off\n");
  RunEnv(paper, &table, /*require_gains=*/true, &rows);
  RunEnv(ecommerce, &table, /*require_gains=*/true, &rows);
  table.Print();
  WriteArtifact(out_path, smoke, rows);
  std::printf("\nOK: classifications identical across all strategies and "
              "both datasets\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main(int argc, char** argv) { return kwsdbg::bench::Main(argc, argv); }
