// Reproduces Fig. 9 (a) and (b): per-level lattice node counts, duplicate
// elimination, and offline generation time; plus the copy-policy ablation
// from DESIGN.md (kAllRelations vs kTextRelationsOnly on a schema prefix).
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/timer.h"

namespace kwsdbg {
namespace bench {
namespace {

void RunFig9() {
  const size_t max_level = EnvMaxLevel();
  DblifeConfig config = EnvDblifeConfig();
  auto ds = GenerateDblife(config);
  KWSDBG_CHECK(ds.ok());
  std::printf(
      "Fig. 9: offline lattice generation over DBLife (%zu tables, %zu "
      "tuples)\n\n",
      ds->db->num_tables(), ds->db->TotalTuples());

  LatticeConfig lconfig;
  lconfig.max_joins = max_level - 1;
  lconfig.num_keyword_copies = 3;
  Timer timer;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  const double total_ms = timer.ElapsedMillis();

  std::printf("(a) nodes generated per level and duplicates removed\n");
  TablePrinter table({"level", "generated", "duplicates", "kept",
                      "cumulative", "dup%"});
  size_t cumulative = 0, total_generated = 0, total_dups = 0;
  for (size_t level = 1; level <= max_level; ++level) {
    const LevelStats& ls = (*lattice)->level_stats()[level - 1];
    cumulative += ls.kept;
    total_generated += ls.generated;
    total_dups += ls.duplicates;
    table.AddRow({std::to_string(level), std::to_string(ls.generated),
                  std::to_string(ls.duplicates), std::to_string(ls.kept),
                  std::to_string(cumulative),
                  Fmt(ls.generated == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(ls.duplicates) /
                                static_cast<double>(ls.generated))});
  }
  table.Print();
  std::printf(
      "total: %zu nodes, %.1f%% of generated trees removed as duplicates "
      "(paper: 11.7%% average, 161,440 nodes at level 7)\n\n",
      cumulative,
      100.0 * static_cast<double>(total_dups) /
          static_cast<double>(total_generated));

  std::printf("(b) time to generate the lattice, cumulative per level\n");
  TablePrinter time_table({"level", "level_ms", "cumulative_ms"});
  double cum_ms = 0;
  for (size_t level = 1; level <= max_level; ++level) {
    const LevelStats& ls = (*lattice)->level_stats()[level - 1];
    cum_ms += ls.gen_millis;
    time_table.AddRow({std::to_string(level), Fmt(ls.gen_millis),
                       Fmt(cum_ms)});
  }
  time_table.Print();
  std::printf(
      "total offline generation: %.1f ms (paper: < 100 s at level 7; this "
      "is a one-time offline cost)\n\n",
      total_ms);

  // Ablation: literal Algorithm 1 copies for ALL relations explodes; compare
  // on the same schema at a modest level.
  std::printf(
      "ablation: copy policy at level 3 (kAllRelations = literal Alg. 1)\n");
  TablePrinter ab({"policy", "nodes", "gen_ms"});
  for (CopyPolicy policy :
       {CopyPolicy::kTextRelationsOnly, CopyPolicy::kAllRelations}) {
    LatticeConfig cfg;
    cfg.max_joins = 2;
    cfg.num_keyword_copies = 3;
    cfg.copy_policy = policy;
    Timer t;
    auto lat = LatticeGenerator::Generate(ds->schema, cfg);
    KWSDBG_CHECK(lat.ok());
    ab.AddRow({policy == CopyPolicy::kAllRelations ? "all-relations"
                                                   : "text-only",
               std::to_string((*lat)->num_nodes()), Fmt(t.ElapsedMillis())});
  }
  ab.Print();
}

}  // namespace
}  // namespace bench
}  // namespace kwsdbg

int main() {
  kwsdbg::bench::RunFig9();
  return 0;
}
